"""Equation 9: the Strassen/blocked crossover point."""

import pytest

from repro.core.crossover import analyze_crossover, crossover_dimension
from repro.util.errors import ValidationError


def test_eq9_formula():
    assert crossover_dimension(1000.0, 480.0) == pytest.approx(1000.0)
    assert crossover_dimension(100.0, 100.0) == pytest.approx(480.0)


def test_eq9_scales_linearly_with_compute():
    assert crossover_dimension(2000, 100) == 2 * crossover_dimension(1000, 100)


def test_eq9_validation():
    with pytest.raises(ValidationError):
        crossover_dimension(0, 1)
    with pytest.raises(ValidationError):
        crossover_dimension(1, 0)


def test_paper_platform_cannot_reach_crossover(machine):
    """§VI-B: 'we were unable to execute problems large enough to
    realize the crossover point' — the machine's crossover n exceeds
    what 4 GB can hold."""
    analysis = analyze_crossover(machine)
    assert not analysis.reachable
    assert analysis.crossover_n > analysis.max_feasible_n
    # Sanity on magnitudes: y ~ 188 Gflop/s = 188000 Mflop/s,
    # z ~ 10240 MB/s -> n ~ 8800.
    assert analysis.crossover_n == pytest.approx(480 * 188416 / 10240, rel=0.05)


def test_bandwidth_rich_platform_reaches_crossover(machine):
    """More channels pull the crossover into feasible range."""
    from repro.machine import generic_smp
    from repro.util.units import GiB

    fat = generic_smp(cores=4, dram_channels=8, dram_capacity_bytes=512 * GiB)
    analysis = analyze_crossover(fat)
    assert analysis.reachable


def test_max_feasible_n_from_memory(machine):
    analysis = analyze_crossover(machine, buffer_factor=8.0)
    # 8 n^2 doubles <= 4 GiB -> n <= sqrt(4GiB/64) ~ 8192.
    assert analysis.max_feasible_n == pytest.approx(8192, rel=0.01)
