"""Algorithmic choice under power constraints."""

import pytest

from repro.core.choice import (
    Configuration,
    choice_table,
    configurations,
    energy_delay_product,
    energy_to_solution,
    pareto_frontier,
    select_under_power_cap,
)
from repro.core.study import EnergyPerformanceStudy, StudyConfig
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def result(machine):
    cfg = StudyConfig(sizes=(512,), threads=(1, 2, 3, 4), execute_max_n=0, verify=False)
    return EnergyPerformanceStudy(machine, config=cfg).run()


class TestConfiguration:
    def _cfg(self, t, w):
        return Configuration("a", 1, t, w, w + 5, t * w)

    def test_dominates(self):
        fast_cool = self._cfg(1.0, 10.0)
        slow_hot = self._cfg(2.0, 20.0)
        assert fast_cool.dominates(slow_hot)
        assert not slow_hot.dominates(fast_cool)

    def test_no_self_domination(self):
        c = self._cfg(1.0, 10.0)
        assert not c.dominates(c)

    def test_incomparable(self):
        fast_hot = self._cfg(1.0, 30.0)
        slow_cool = self._cfg(3.0, 10.0)
        assert not fast_hot.dominates(slow_cool)
        assert not slow_cool.dominates(fast_hot)

    def test_power_metric(self):
        c = self._cfg(1.0, 10.0)
        assert c.power("avg") == 10.0
        assert c.power("peak") == 15.0
        with pytest.raises(ValidationError):
            c.power("rms")

    def test_edp(self):
        assert self._cfg(2.0, 10.0).edp == pytest.approx(40.0)


class TestFrontier:
    def test_all_configurations_enumerated(self, result):
        cfgs = configurations(result, 512)
        assert len(cfgs) == 3 * 4

    def test_frontier_nonempty_and_subset(self, result):
        frontier = pareto_frontier(result, 512)
        assert 1 <= len(frontier) <= 12
        all_keys = {(c.algorithm, c.threads) for c in configurations(result, 512)}
        assert all((c.algorithm, c.threads) in all_keys for c in frontier)

    def test_frontier_mutually_nondominated(self, result):
        frontier = pareto_frontier(result, 512)
        for a in frontier:
            for b in frontier:
                assert not a.dominates(b)

    def test_fastest_point_on_frontier(self, result):
        """The globally fastest configuration can't be dominated."""
        frontier = pareto_frontier(result, 512)
        fastest = min(configurations(result, 512), key=lambda c: c.time_s)
        assert any(
            c.algorithm == fastest.algorithm and c.threads == fastest.threads
            for c in frontier
        )

    def test_openblas_4t_is_fastest_point(self, result):
        frontier = pareto_frontier(result, 512)
        assert frontier[0].algorithm == "openblas"
        assert frontier[0].threads == 4


class TestPowerCap:
    def test_generous_cap_picks_fastest(self, result):
        pick = select_under_power_cap(result, 512, 1000.0)
        assert pick.algorithm == "openblas" and pick.threads == 4

    def test_tight_cap_changes_choice(self, result):
        """The paper's §VI-D scenario: under a facility cap, OpenBLAS's
        peak parallelism 'cannot be realized due to a lack of available
        power' and the choice shifts."""
        unconstrained = select_under_power_cap(result, 512, 1000.0)
        # Cap just below the unconstrained pick's peak power.
        cap = unconstrained.peak_power_w - 1.0
        constrained = select_under_power_cap(result, 512, cap)
        assert constrained is not None
        assert (constrained.algorithm, constrained.threads) != (
            unconstrained.algorithm,
            unconstrained.threads,
        )
        assert constrained.peak_power_w <= cap

    def test_impossible_cap_returns_none(self, result):
        assert select_under_power_cap(result, 512, 1.0) is None

    def test_avg_metric(self, result):
        pick = select_under_power_cap(result, 512, 25.0, metric="avg")
        assert pick is not None
        assert pick.avg_power_w <= 25.0

    def test_cap_validation(self, result):
        with pytest.raises(ValidationError):
            select_under_power_cap(result, 512, 0.0)


class TestMetrics:
    def test_energy_to_solution_keys(self, result):
        ets = energy_to_solution(result, 512)
        assert len(ets) == 12
        assert all(v > 0 for v in ets.values())

    def test_edp_consistent(self, result):
        edp = energy_delay_product(result, 512)
        ets = energy_to_solution(result, 512)
        for key, value in edp.items():
            alg, p = key
            t = result.time_s(alg, 512, p)
            assert value == pytest.approx(ets[key] * t)

    def test_choice_table(self, result):
        table = choice_table(result, 512)
        assert len(table.rows) == 12
        assert table.rows[0][-1] == "*"  # fastest row is Pareto-optimal
        # Rows sorted by time.
        times = [float(r[2]) for r in table.rows]
        assert times == sorted(times)
