"""The quiesce+repetition experiment protocol."""

import pytest

from repro.algorithms import BlockedGemm, paper_algorithms
from repro.core.protocol import ExperimentProtocol, TrialStats
from repro.power import MsrFile, Plane, RaplReader
from repro.util.errors import ValidationError


class TestTrialStats:
    def test_from_samples(self):
        stats = TrialStats.from_samples([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.minimum == 1.0 and stats.maximum == 3.0
        assert stats.n == 3
        assert stats.std == pytest.approx((2.0 / 3.0) ** 0.5)

    def test_relative_spread(self):
        assert TrialStats.from_samples([2.0, 2.0]).relative_spread == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            TrialStats.from_samples([])


class TestProtocol:
    @pytest.fixture(scope="class")
    def result(self, machine):
        proto = ExperimentProtocol(machine, repetitions=4, quiesce_s=10.0, seed=3)
        return proto.run([BlockedGemm(machine)], sizes=(128,), threads=(1, 2))

    def test_repetitions_recorded(self, result):
        assert len(result.trials[("openblas", 128, 1)]) == 4

    def test_statistics_have_spread(self, result):
        tstats, wstats = result.cell("openblas", 128, 1)
        assert tstats.std > 0
        assert wstats.std > 0
        assert tstats.relative_spread < 0.05  # but small

    def test_mean_matches_exact_engine(self, result, machine):
        """The noisy mean stays within a percent of the exact value."""
        from repro.sim import Engine

        exact = Engine(machine).run(
            BlockedGemm(machine).build(128, 1, execute=False).graph, 1, execute=False
        )
        tstats, _ = result.cell("openblas", 128, 1)
        assert tstats.mean == pytest.approx(exact.elapsed_s, rel=0.02)

    def test_summary_table(self, result):
        table = result.summary_table()
        assert len(table.rows) == 2
        assert "time cv" in table.headers

    def test_missing_cell(self, result):
        with pytest.raises(ValidationError):
            result.cell("openblas", 9999, 1)


def test_quiesce_feeds_msr_stream(machine):
    """With a quiesce period, the MSR counter history includes the idle
    energy between tests — what the paper's always-on RAPL saw."""
    msr = MsrFile()
    reader = RaplReader(msr)
    proto = ExperimentProtocol(
        machine, repetitions=2, quiesce_s=60.0, seed=1, msr=msr
    )
    proto.run([BlockedGemm(machine)], sizes=(128,), threads=(1,))
    total = reader.energy_joules(Plane.PACKAGE)
    idle_floor = 2 * 60.0 * machine.energy.package_static_w
    assert total > idle_floor  # quiesce idle plus the runs themselves


def test_protocol_validation(machine):
    with pytest.raises(Exception):
        ExperimentProtocol(machine, repetitions=0)
    proto = ExperimentProtocol(machine, repetitions=1)
    with pytest.raises(ValidationError):
        proto.run([], sizes=(128,), threads=(1,))
