"""Tracing must observe, never perturb: traced and untraced studies
produce bit-identical results, serially and in parallel, and the
recorded spans account for (essentially all of) the study wall time."""

import pytest

from repro.api import RunOptions, Study
from repro.observability.export import (
    events_to_spans,
    read_trace_json,
    validate_chrome_trace,
)

CFG = dict(sizes=(128, 256), threads=(1, 2), execute_max_n=128)


def _fields(m):
    """The floats that must match bit-for-bit between runs."""
    e = m.energy
    return (
        m.elapsed_s,
        e.package,
        e.pp0,
        e.dram,
        m.flops,
        m.bytes_dram,
        m.stats.busy_core_seconds,
        m.stats.task_count,
    )


def _assert_identical(a, b):
    assert set(a.runs) == set(b.runs)
    for key in a.runs:
        assert _fields(a.runs[key]) == _fields(b.runs[key]), key


@pytest.mark.parametrize("parallel", [None, 2], ids=["serial", "parallel2"])
def test_tracing_does_not_change_results(machine, parallel):
    plain = Study(machine, **CFG).run(RunOptions(parallel=parallel))
    traced = Study(machine, **CFG).run(
        RunOptions(parallel=parallel, trace=True)
    )
    _assert_identical(plain.result, traced.result)


def test_serial_and_parallel_traced_results_identical(machine):
    serial = Study(machine, **CFG).run(RunOptions(trace=True))
    par = Study(machine, **CFG).run(RunOptions(parallel=2, trace=True))
    _assert_identical(serial.result, par.result)


def test_parallel_trace_merges_every_cell_in_serial_order(machine):
    run = Study(machine, **CFG).run(RunOptions(parallel=2, trace=True))
    cells = run.tracer.find("cell")
    assert len(cells) == len(run.result.runs)
    # Merge order is the serial cell order, not completion order.
    merged_keys = [
        (sp.attrs["alg"], sp.attrs["n"], sp.attrs["threads"]) for sp in cells
    ]
    assert merged_keys == list(run.result.runs)
    # Worker groups are rebased end-to-end: no two cells overlap.
    for prev, cur in zip(cells, cells[1:]):
        assert cur.t_start >= prev.t_end - 1e-12


def test_parallel_trace_absorbs_worker_metrics(machine):
    serial = Study(machine, **CFG).run(RunOptions(trace=True))
    par = Study(machine, **CFG).run(RunOptions(parallel=2, trace=True))
    s = serial.metrics
    p = par.metrics
    # Deterministic counters must agree regardless of process layout.
    for name in ("lowering.tasks", "engine.sweeps"):
        assert name in s and name in p, name
        assert p[name]["value"] == s[name]["value"], name


def test_exported_trace_is_schema_valid_and_attributed(machine, tmp_path):
    out = tmp_path / "study.json"
    run = Study(machine, **CFG).run(RunOptions(trace=out))
    data = read_trace_json(out)
    assert validate_chrome_trace(data) == []

    spans = events_to_spans(data)
    cells = [sp for sp in spans if sp.name == "cell"]
    assert len(cells) == len(run.result.runs)
    wall = data["otherData"]["meta"]["wall_s"]
    cell_sum = sum(sp.duration_s for sp in cells)
    # Acceptance bound is 1% on realistic study sizes; this reduced
    # matrix keeps a little slack against scheduler jitter in CI.
    assert cell_sum == pytest.approx(wall, rel=0.05)

    sim = [sp for sp in spans if sp.name == "simulate"]
    assert len(sim) == len(cells)  # every cell simulated under its span


def test_cell_spans_carry_metric_deltas(machine):
    run = Study(machine, sizes=(128,), threads=(1,), execute_max_n=0,
                verify=False).run(RunOptions(trace=True))
    cell = next(
        sp for sp in run.tracer.find("cell") if sp.attrs["alg"] == "openblas"
    )
    delta = cell.attrs["metrics"]
    assert delta.get("lowering.tasks", 0) > 0
    assert delta.get("engine.sweeps", 0) > 0
    assert cell.attrs["sim_elapsed_s"] == pytest.approx(
        run.result.measurement("openblas", 128, 1).elapsed_s
    )
