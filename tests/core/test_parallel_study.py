"""Parallel study driver: bit-identical to the serial run.

``EnergyPerformanceStudy.run(parallel=N)`` fans the independent matrix
cells over a process pool, but the merged result must be exactly the
serial run: same key order, same measurements, and — because the parent
replays every cell's plane energies into its own MSR in serial order —
the same RAPL counter stream.
"""

import pytest

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.registry import make_algorithm
from repro.core.study import EnergyPerformanceStudy, StudyConfig
from repro.power.msr import PLANE_MSR, MsrFile
from repro.power.planes import Plane
from repro.sim.engine import Engine
from repro.util.errors import StudyCellError


@pytest.fixture(scope="module")
def pair(machine):
    """(serial result + its MsrFile, parallel result + its MsrFile)."""
    cfg = StudyConfig(sizes=(128, 256), threads=(1, 2), execute_max_n=128)

    def run(parallel):
        msr = MsrFile()
        study = EnergyPerformanceStudy(
            machine, config=cfg, engine=Engine(machine, msr=msr)
        )
        return study.run(parallel=parallel), msr

    return run(None), run(2)


def test_same_cells_in_same_order(pair):
    (ser, _), (par, _) = pair
    assert list(ser.runs) == list(par.runs)


def test_measurements_identical(pair):
    """Worker processes redo the exact deterministic simulation, so
    every cell's timing and energy must match the serial run bit for
    bit (no tolerance)."""
    (ser, _), (par, _) = pair
    for key in ser.runs:
        a, b = ser.runs[key], par.runs[key]
        assert a.elapsed_s == b.elapsed_s, key
        assert a.energy.package == b.energy.package, key
        assert a.energy.pp0 == b.energy.pp0, key
        assert a.energy.dram == b.energy.dram, key


def test_msr_counter_stream_replayed(pair):
    """The parent deposits each cell's plane energies into its own MSR
    after the pool drains, in serial order — an external RAPL reader
    sees identical final counters either way."""
    (_, msr_ser), (_, msr_par) = pair
    for plane in (Plane.PACKAGE, Plane.PP0, Plane.DRAM):
        addr = PLANE_MSR[plane]
        assert msr_ser.read(addr) == msr_par.read(addr), plane


class _CrashingAlg(MatmulAlgorithm):
    """Delegates to the blocked algorithm but blows up on one cell.

    Module-level so the fork-based process pool can ship it to workers.
    """

    name = "crasher"
    display_name = "Crasher"

    def __init__(self, machine, crash_cell=(128, 2)):
        super().__init__(machine)
        self.crash_cell = crash_cell
        self._inner = make_algorithm("openblas", machine)

    def flop_count(self, n):
        return self._inner.flop_count(n)

    def build(self, n, threads, seed=0, execute=True):
        if (n, threads) == self.crash_cell:
            raise RuntimeError("injected worker crash")
        return self._inner.build(n, threads, seed=seed, execute=execute)


def test_worker_crash_surfaces_cell_coordinates(machine):
    """A crashing worker must re-raise as StudyCellError carrying the
    failing cell's (algorithm, size, threads) — not a bare pool
    traceback."""
    cfg = StudyConfig(
        sizes=(64, 128),
        threads=(1, 2),
        execute_max_n=0,
        verify=False,
        baseline="crasher",
    )
    study = EnergyPerformanceStudy(machine, [_CrashingAlg(machine)], config=cfg)
    with pytest.raises(StudyCellError) as exc_info:
        study.run(parallel=2)
    err = exc_info.value
    assert (err.algorithm, err.size, err.threads) == ("crasher", 128, 2)
    assert "size=128" in str(err) and "threads=2" in str(err)
    assert "injected worker crash" in str(err)
    assert isinstance(err.__cause__, RuntimeError)


def test_worker_crash_message_names_first_failing_cell(machine):
    """The error names the failing cell even when it is the very first
    submitted — merge order is serial (table) order, deterministic
    regardless of pool completion timing."""
    cfg = StudyConfig(
        sizes=(64, 128),
        threads=(1, 2),
        execute_max_n=0,
        verify=False,
        baseline="crasher",
    )
    alg = _CrashingAlg(machine, crash_cell=(64, 1))  # the very first cell
    study = EnergyPerformanceStudy(machine, [alg], config=cfg)
    with pytest.raises(StudyCellError) as exc_info:
        study.run(parallel=2)
    assert (exc_info.value.size, exc_info.value.threads) == (64, 1)


def test_parallel_one_is_serial_path(machine):
    """parallel<=1 must not spin up a pool (and must still fill the
    matrix)."""
    cfg = StudyConfig(sizes=(128,), threads=(1, 2), execute_max_n=0)
    study = EnergyPerformanceStudy(machine, config=cfg)
    result = study.run(parallel=1)
    assert len(result.runs) == 3 * 1 * 2


# ---- shared-memory transport ------------------------------------------


def _leaked_segments():
    import glob

    return set(glob.glob("/dev/shm/repro-arena-*"))


def test_all_transports_bit_identical(machine):
    """serial == parallel-pickle == parallel-shm, measurements and MSR
    counter stream alike.  Sizes above execute_max_n force the
    pre-lowered arena path, so the shm run really ships descriptors."""
    cfg = StudyConfig(sizes=(128, 512), threads=(1, 2), execute_max_n=128)
    before = _leaked_segments()

    def run(parallel, transport=None):
        msr = MsrFile()
        study = EnergyPerformanceStudy(
            machine, config=cfg, _engine=Engine(machine, msr=msr)
        )
        return study._run(parallel, transport=transport), msr

    ser, msr_ser = run(None)
    shm, msr_shm = run(2, "shm")
    pkl, msr_pkl = run(2, "pickle")
    assert list(ser.runs) == list(shm.runs) == list(pkl.runs)
    for key in ser.runs:
        a, b, c = ser.runs[key], shm.runs[key], pkl.runs[key]
        assert a.elapsed_s == b.elapsed_s == c.elapsed_s, key
        assert a.energy.package == b.energy.package == c.energy.package, key
        assert a.energy.pp0 == b.energy.pp0 == c.energy.pp0, key
        assert a.energy.dram == b.energy.dram == c.energy.dram, key
    for plane in (Plane.PACKAGE, Plane.PP0, Plane.DRAM):
        addr = PLANE_MSR[plane]
        assert msr_ser.read(addr) == msr_shm.read(addr) == msr_pkl.read(addr)
    assert _leaked_segments() == before


def test_shm_run_counts_pickle_bytes_avoided(machine):
    """Every descriptor-shipped cell credits its arena's column bytes
    to the study.pickle_bytes_avoided counter."""
    from repro.observability.metrics import registry

    cfg = StudyConfig(sizes=(512,), threads=(1, 2), execute_max_n=0, verify=False)
    study = EnergyPerformanceStudy(
        machine, config=cfg, _engine=Engine(machine, engine="fast")
    )
    snap = registry().snapshot()
    study._run(2, transport="shm")
    delta = registry().delta_since(snap)
    assert delta.get("study.pickle_bytes_avoided", 0) > 0
    assert delta.get("shm.bytes_mapped", 0) > 0


def test_transport_env_var_is_honoured(machine, monkeypatch):
    """REPRO_STUDY_TRANSPORT steers entry points that don't plumb the
    knob (the verify harness's study differential in CI)."""
    from repro.core.study import _resolve_transport

    monkeypatch.setenv("REPRO_STUDY_TRANSPORT", "pickle")
    assert _resolve_transport(None) == "pickle"
    assert _resolve_transport("shm") == "shm"  # explicit arg wins
    monkeypatch.setenv("REPRO_STUDY_TRANSPORT", "shm")
    assert _resolve_transport(None) == "shm"
    monkeypatch.delenv("REPRO_STUDY_TRANSPORT")
    assert _resolve_transport(None) in ("shm", "pickle")  # auto


def test_worker_crash_under_shm_leaves_no_segments(machine):
    """A crashing cell mid-sweep must not strand /dev/shm segments —
    the pool closes in the driver's finally."""
    before = _leaked_segments()
    cfg = StudyConfig(
        sizes=(64, 128),
        threads=(1, 2),
        execute_max_n=0,
        verify=False,
        baseline="crasher",
    )
    study = EnergyPerformanceStudy(machine, [_CrashingAlg(machine)], config=cfg)
    with pytest.raises(StudyCellError):
        study._run(2, transport="shm")
    assert _leaked_segments() == before


def test_interrupt_mid_prebuild_leaves_no_segments(machine, monkeypatch):
    """KeyboardInterrupt while the parent is still laying arenas into
    the pool (first segments already created) must reach the driver's
    finally and unlink everything."""
    before = _leaked_segments()
    cfg = StudyConfig(sizes=(512,), threads=(1, 2), execute_max_n=0, verify=False)
    study = EnergyPerformanceStudy(
        machine, config=cfg, _engine=Engine(machine, engine="fast")
    )
    real_prebuild = EnergyPerformanceStudy._prebuild
    calls = {"n": 0}

    def interrupting(self, alg, n, p):
        calls["n"] += 1
        if calls["n"] >= 3:
            raise KeyboardInterrupt
        return real_prebuild(self, alg, n, p)

    monkeypatch.setattr(EnergyPerformanceStudy, "_prebuild", interrupting)
    with pytest.raises(KeyboardInterrupt):
        study._run(2, transport="shm")
    assert calls["n"] >= 3
    assert _leaked_segments() == before
