"""Parallel study driver: bit-identical to the serial run.

``EnergyPerformanceStudy.run(parallel=N)`` fans the independent matrix
cells over a process pool, but the merged result must be exactly the
serial run: same key order, same measurements, and — because the parent
replays every cell's plane energies into its own MSR in serial order —
the same RAPL counter stream.
"""

import pytest

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.registry import make_algorithm
from repro.core.study import EnergyPerformanceStudy, StudyConfig
from repro.power.msr import PLANE_MSR, MsrFile
from repro.power.planes import Plane
from repro.sim.engine import Engine
from repro.util.errors import StudyCellError


@pytest.fixture(scope="module")
def pair(machine):
    """(serial result + its MsrFile, parallel result + its MsrFile)."""
    cfg = StudyConfig(sizes=(128, 256), threads=(1, 2), execute_max_n=128)

    def run(parallel):
        msr = MsrFile()
        study = EnergyPerformanceStudy(
            machine, config=cfg, engine=Engine(machine, msr=msr)
        )
        return study.run(parallel=parallel), msr

    return run(None), run(2)


def test_same_cells_in_same_order(pair):
    (ser, _), (par, _) = pair
    assert list(ser.runs) == list(par.runs)


def test_measurements_identical(pair):
    """Worker processes redo the exact deterministic simulation, so
    every cell's timing and energy must match the serial run bit for
    bit (no tolerance)."""
    (ser, _), (par, _) = pair
    for key in ser.runs:
        a, b = ser.runs[key], par.runs[key]
        assert a.elapsed_s == b.elapsed_s, key
        assert a.energy.package == b.energy.package, key
        assert a.energy.pp0 == b.energy.pp0, key
        assert a.energy.dram == b.energy.dram, key


def test_msr_counter_stream_replayed(pair):
    """The parent deposits each cell's plane energies into its own MSR
    after the pool drains, in serial order — an external RAPL reader
    sees identical final counters either way."""
    (_, msr_ser), (_, msr_par) = pair
    for plane in (Plane.PACKAGE, Plane.PP0, Plane.DRAM):
        addr = PLANE_MSR[plane]
        assert msr_ser.read(addr) == msr_par.read(addr), plane


class _CrashingAlg(MatmulAlgorithm):
    """Delegates to the blocked algorithm but blows up on one cell.

    Module-level so the fork-based process pool can ship it to workers.
    """

    name = "crasher"
    display_name = "Crasher"

    def __init__(self, machine, crash_cell=(128, 2)):
        super().__init__(machine)
        self.crash_cell = crash_cell
        self._inner = make_algorithm("openblas", machine)

    def flop_count(self, n):
        return self._inner.flop_count(n)

    def build(self, n, threads, seed=0, execute=True):
        if (n, threads) == self.crash_cell:
            raise RuntimeError("injected worker crash")
        return self._inner.build(n, threads, seed=seed, execute=execute)


def test_worker_crash_surfaces_cell_coordinates(machine):
    """A crashing worker must re-raise as StudyCellError carrying the
    failing cell's (algorithm, size, threads) — not a bare pool
    traceback."""
    cfg = StudyConfig(
        sizes=(64, 128),
        threads=(1, 2),
        execute_max_n=0,
        verify=False,
        baseline="crasher",
    )
    study = EnergyPerformanceStudy(machine, [_CrashingAlg(machine)], config=cfg)
    with pytest.raises(StudyCellError) as exc_info:
        study.run(parallel=2)
    err = exc_info.value
    assert (err.algorithm, err.size, err.threads) == ("crasher", 128, 2)
    assert "size=128" in str(err) and "threads=2" in str(err)
    assert "injected worker crash" in str(err)
    assert isinstance(err.__cause__, RuntimeError)


def test_worker_crash_message_names_first_failing_cell(machine):
    """The error names the failing cell even when it is the very first
    submitted — merge order is serial (table) order, deterministic
    regardless of pool completion timing."""
    cfg = StudyConfig(
        sizes=(64, 128),
        threads=(1, 2),
        execute_max_n=0,
        verify=False,
        baseline="crasher",
    )
    alg = _CrashingAlg(machine, crash_cell=(64, 1))  # the very first cell
    study = EnergyPerformanceStudy(machine, [alg], config=cfg)
    with pytest.raises(StudyCellError) as exc_info:
        study.run(parallel=2)
    assert (exc_info.value.size, exc_info.value.threads) == (64, 1)


def test_parallel_one_is_serial_path(machine):
    """parallel<=1 must not spin up a pool (and must still fill the
    matrix)."""
    cfg = StudyConfig(sizes=(128,), threads=(1, 2), execute_max_n=0)
    study = EnergyPerformanceStudy(machine, config=cfg)
    result = study.run(parallel=1)
    assert len(result.runs) == 3 * 1 * 2
