"""Equation 8: communication bounds."""

import math

import pytest

from repro.core.bounds import (
    OMEGA_CLASSICAL,
    OMEGA_STRASSEN,
    bound_crossover_memory,
    caps_bandwidth_bound,
    classical_bandwidth_bound,
    communication_bound_words,
)
from repro.util.errors import ValidationError


def test_omega_values():
    assert OMEGA_STRASSEN == pytest.approx(math.log2(7))
    assert OMEGA_CLASSICAL == 3.0


def test_eq8_hand_case():
    # n=2^10, P=2^4=16, M=2^20: dependent = n^w / (P M^(w/2-1)).
    b = communication_bound_words(1024, 16, 2**20)
    w = math.log2(7)
    expected_dep = 1024**w / (16 * (2**20) ** (w / 2 - 1))
    expected_ind = 1024**2 / 16 ** (2 / w)
    assert b.memory_dependent == pytest.approx(expected_dep)
    assert b.memory_independent == pytest.approx(expected_ind)
    assert b.words == max(expected_dep, expected_ind)


def test_small_memory_is_memory_dependent_regime():
    b = communication_bound_words(4096, 64, m=1000)
    assert b.binding_term == "memory-dependent"


def test_large_memory_is_memory_independent_regime():
    b = communication_bound_words(4096, 64, m=1e12)
    assert b.binding_term == "memory-independent"


def test_crossover_memory_separates_regimes():
    n, p = 8192, 49
    m_star = bound_crossover_memory(n, p)
    below = communication_bound_words(n, p, m_star / 10)
    above = communication_bound_words(n, p, m_star * 10)
    assert below.binding_term == "memory-dependent"
    assert above.binding_term == "memory-independent"
    # At the crossover the two terms are equal.
    at = communication_bound_words(n, p, m_star)
    assert at.memory_dependent == pytest.approx(at.memory_independent, rel=1e-9)


def test_caps_below_classical():
    """Strassen-like algorithms move asymptotically less data — the
    premise of the paper's §IV-C."""
    n, p, m = 2**14, 64, 2**22
    assert caps_bandwidth_bound(n, p, m) < classical_bandwidth_bound(n, p, m)


def test_bound_decreases_with_memory_in_dependent_regime():
    n, p = 8192, 343
    m1 = bound_crossover_memory(n, p) / 100
    m2 = m1 * 4
    assert caps_bandwidth_bound(n, p, m2) < caps_bandwidth_bound(n, p, m1)


def test_bound_decreases_with_processors():
    n, m = 8192, 2**20
    assert caps_bandwidth_bound(n, 64, m) < caps_bandwidth_bound(n, 8, m)


def test_validation():
    with pytest.raises(ValidationError):
        communication_bound_words(0, 1, 1)
    with pytest.raises(ValidationError):
        communication_bound_words(1, 0, 1)
    with pytest.raises(ValidationError):
        communication_bound_words(1, 1, -1)
