"""Equations 1-4: energy-performance ratios."""

import pytest
from hypothesis import given, strategies as st

from repro.core.ep import EPMeasurement, ep_ratio, ep_total, ep_total_planes
from repro.power.planes import Plane
from repro.util.errors import ValidationError


class TestEq1:
    def test_hand_case(self):
        # Table IV style: EAvg = 20 W over 3.15 ms -> EP ~ 6349.
        assert ep_ratio(20.0, 0.00315) == pytest.approx(6349.2, rel=1e-4)

    def test_zero_time_rejected(self):
        with pytest.raises(ValidationError):
            ep_ratio(10.0, 0.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValidationError):
            ep_ratio(-1.0, 1.0)

    @given(st.floats(min_value=0.01, max_value=1e3), st.floats(min_value=1e-6, max_value=1e3))
    def test_homogeneity(self, e, t):
        # Doubling both energy and time leaves EP unchanged.
        assert ep_ratio(2 * e, 2 * t) == pytest.approx(ep_ratio(e, t))


class TestEq2:
    def test_hand_case(self):
        # Sequential: 5 units over 2 s; parallel max: 10 units, max T 3 s.
        assert ep_total(5.0, [8.0, 10.0], 2.0, [2.5, 3.0]) == pytest.approx(15.0 / 5.0)

    def test_max_semantics(self):
        """Eq. 2 takes the max over parallel units, not the sum."""
        v = ep_total(0.0, [1.0, 100.0], 0.0, [1.0, 1.0])
        assert v == 100.0

    def test_pure_parallel_reduces_to_eq1(self):
        assert ep_total(0.0, [7.0], 0.0, [2.0]) == ep_ratio(7.0, 2.0)

    def test_pure_sequential(self):
        assert ep_total(10.0, [0.0], 5.0, [0.0]) == 2.0

    def test_empty_parallel_rejected(self):
        with pytest.raises(ValidationError):
            ep_total(1.0, [], 1.0, [])

    def test_zero_total_time_rejected(self):
        with pytest.raises(ValidationError):
            ep_total(1.0, [1.0], 0.0, [0.0])


class TestEq4:
    def test_planes_expand_per_eq3(self):
        seq = {Plane.PACKAGE: 4.0, Plane.DRAM: 1.0}
        par = [
            {Plane.PACKAGE: 10.0, Plane.DRAM: 2.0},
            {Plane.PACKAGE: 8.0, Plane.DRAM: 5.0},
        ]
        # EAvg_s = 5; max parallel sums = max(12, 13) = 13.
        v = ep_total_planes(seq, par, 1.0, [1.0, 1.0])
        assert v == pytest.approx((5.0 + 13.0) / 2.0)

    def test_pp0_not_double_counted(self):
        par = [{Plane.PACKAGE: 10.0, Plane.PP0: 6.0}]
        assert ep_total_planes({}, par, 0.0, [2.0]) == pytest.approx(5.0)

    def test_empty_sequential_planes_ok(self):
        assert ep_total_planes({}, [{Plane.PACKAGE: 4.0}], 0.0, [2.0]) == 2.0


class TestEPMeasurement:
    def _measurement(self, engine):
        from repro.runtime.cost import TaskCost
        from repro.runtime.task import TaskGraph

        g = TaskGraph()
        g.add("t", TaskCost(flops=51.2e9))
        return engine.run(g, threads=1)

    def test_power_convention_is_avg_watts_over_time(self, engine):
        m = self._measurement(engine)
        epm = EPMeasurement(m, convention="power")
        assert epm.eavg == pytest.approx(m.avg_power_w())
        assert epm.ep == pytest.approx(m.avg_power_w() / m.elapsed_s)

    def test_energy_convention(self, engine):
        m = self._measurement(engine)
        epm = EPMeasurement(m, convention="energy")
        assert epm.eavg == pytest.approx(m.energy.package)
        # Under the energy convention, EP is just average watts.
        assert epm.ep == pytest.approx(m.avg_power_w())

    def test_plane_selection(self, engine):
        m = self._measurement(engine)
        pp0 = EPMeasurement(m, plane=Plane.PP0, convention="power")
        pkg = EPMeasurement(m, plane=Plane.PACKAGE, convention="power")
        assert pp0.ep < pkg.ep


class TestEq2Properties:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=40, deadline=None)
    @given(
        eavgs=st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=8),
        times=st.lists(st.floats(min_value=1e-6, max_value=1e3), min_size=1, max_size=8),
        seq_e=st.floats(min_value=0, max_value=1e3),
        seq_t=st.floats(min_value=0, max_value=1e3),
    )
    def test_permutation_invariance(self, eavgs, times, seq_e, seq_t):
        """Eq. 2 takes max over units: unit ordering cannot matter."""
        import itertools

        k = min(len(eavgs), len(times))
        eavgs, times = eavgs[:k], times[:k]
        baseline = ep_total(seq_e, eavgs, seq_t, times)
        rotated = ep_total(seq_e, eavgs[::-1], seq_t, times[::-1])
        assert rotated == pytest.approx(baseline, rel=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        eavgs=st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=8),
        times=st.lists(st.floats(min_value=1e-6, max_value=1e3), min_size=1, max_size=8),
    )
    def test_adding_a_cheaper_faster_unit_is_free(self, eavgs, times):
        """A parallel unit below both maxima never changes EP_t."""
        k = min(len(eavgs), len(times))
        eavgs, times = eavgs[:k], times[:k]
        baseline = ep_total(1.0, eavgs, 1.0, times)
        extra_e = min(eavgs) * 0.5
        extra_t = min(times) * 0.5
        extended = ep_total(1.0, eavgs + [extra_e], 1.0, times + [extra_t])
        assert extended == pytest.approx(baseline, rel=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        e=st.floats(min_value=0.1, max_value=100),
        t=st.floats(min_value=0.01, max_value=100),
        factor=st.floats(min_value=1.01, max_value=10),
    )
    def test_slower_max_unit_lowers_ep_under_power_convention(self, e, t, factor):
        """Stretching the slowest unit's time (same watts) lowers EP_t —
        longer runs at equal power are worse on the ratio."""
        fast = ep_total(0.0, [e], 0.0, [t])
        slow = ep_total(0.0, [e], 0.0, [t * factor])
        assert slow < fast
