"""Typed counters/gauges: registration, snapshots, deltas, merge."""

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    counter,
    registry,
)
from repro.util.errors import ConfigurationError


class TestCounter:
    def test_add_accumulates(self):
        c = Counter("x")
        c.add()
        c.add(2.5)
        assert c.value == 3.5

    def test_negative_add_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("x").add(-1)


class TestGauge:
    def test_set_tracks_high_water(self):
        g = Gauge("x")
        g.set(10)
        g.set(4)
        assert g.value == 4.0
        assert g.max_value == 10.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("hits")
        b = reg.counter("hits")
        assert a is b
        assert len(reg) == 1

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        with pytest.raises(ConfigurationError):
            reg.gauge("hits")

    def test_snapshot_and_delta(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        g = reg.gauge("bytes")
        c.add(2)
        g.set(100)
        before = reg.snapshot()
        c.add(3)
        delta = reg.delta_since(before)
        # Counter reports the increment; the unwritten gauge is omitted.
        assert delta == {"hits": 3.0}
        g.set(50)
        assert reg.delta_since(before) == {"hits": 3.0, "bytes": 50.0}

    def test_export_is_typed_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b.hits", description="d")
        reg.gauge("a.bytes", unit="B").set(7)
        dump = reg.export()
        assert list(dump) == ["a.bytes", "b.hits"]
        assert dump["a.bytes"]["kind"] == "gauge"
        assert dump["a.bytes"]["max"] == 7.0
        assert dump["b.hits"] == {
            "kind": "counter", "unit": "", "description": "d", "value": 0.0,
        }

    def test_absorb_merges_worker_delta(self):
        parent = MetricsRegistry()
        parent.counter("hits").add(1)
        worker = MetricsRegistry()
        worker.counter("hits").add(4)
        worker.gauge("bytes", unit="B").set(9)
        before = {"hits": 2.0}
        worker.counter("hits").add(0)  # no-op; delta vs before is 2
        parent.absorb(worker.export_delta(before))
        assert parent.get("hits").value == 3.0  # 1 + (4 - 2)
        # Unknown metric auto-registered with the worker's type/unit.
        assert isinstance(parent.get("bytes"), Gauge)
        assert parent.get("bytes").value == 9.0
        assert parent.get("bytes").unit == "B"

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("hits").add(5)
        reg.reset()
        assert reg.get("hits").value == 0.0
        assert "hits" in reg


class TestProcessGlobal:
    def test_module_counter_lands_in_global_registry(self):
        c = counter("test.metrics.probe")
        assert registry().get("test.metrics.probe") is c

    def test_instrumentation_sites_registered_on_import(self):
        # Importing the algorithms/runtime packages registers the
        # metrics the tentpole names.
        import repro.algorithms.base  # noqa: F401
        import repro.power.msr  # noqa: F401
        import repro.runtime.fastpath  # noqa: F401
        import repro.runtime.scheduler  # noqa: F401

        reg = registry()
        for name in (
            "build_cache.hits",
            "build_cache.misses",
            "lowering.tasks",
            "lowering.arena_bytes",
            "engine.sweeps",
            "engine.events",
            "rapl.reads",
        ):
            assert name in reg, name
