"""Chrome trace-event export, schema validation, and the phase table."""

import json

import pytest

from repro.observability import trace
from repro.observability.export import (
    events_to_spans,
    metrics_table,
    phase_table,
    read_trace_json,
    spans_to_chrome_events,
    trace_payload,
    validate_chrome_trace,
    write_trace_json,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import tracing
from repro.util.errors import ValidationError


@pytest.fixture()
def tracer():
    with tracing() as tr:
        with trace.span("study.run", cells=2):
            with trace.span("cell", alg="caps", n=256):
                pass
            with trace.span("cell", alg="strassen", n=256):
                pass
    return tr


class TestChromeEvents:
    def test_leading_metadata_then_complete_events(self, tracer):
        events = spans_to_chrome_events(tracer)
        assert events[0]["ph"] == "M"
        body = events[1:]
        assert len(body) == 3
        assert all(ev["ph"] == "X" for ev in body)

    def test_timestamps_rebased_to_zero(self, tracer):
        body = spans_to_chrome_events(tracer)[1:]
        assert min(ev["ts"] for ev in body) == 0.0

    def test_args_carry_attrs_depth_and_cpu(self, tracer):
        body = spans_to_chrome_events(tracer)[1:]
        cell = next(ev for ev in body if ev["name"] == "cell")
        assert cell["args"]["alg"] in ("caps", "strassen")
        assert cell["args"]["depth"] == 1
        assert "cpu_ms" in cell["args"]

    def test_open_spans_are_skipped(self):
        with tracing() as tr:
            trace.span("never-closed")
        assert len(spans_to_chrome_events(tr)) == 1  # metadata only

    def test_payload_is_json_serializable_and_valid(self, tracer):
        payload = trace_payload(tracer, metrics={}, meta={"command": "t"})
        json.dumps(payload)  # must not raise
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["meta"]["command"] == "t"


class TestFileRoundTrip:
    def test_write_read_validate(self, tracer, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits").add(2)
        path = write_trace_json(
            tmp_path / "t.json", tracer, metrics=reg, meta={"wall_s": 1.0}
        )
        data = read_trace_json(path)
        assert validate_chrome_trace(data) == []
        assert data["otherData"]["metrics"]["hits"]["value"] == 2.0
        assert data["otherData"]["meta"]["wall_s"] == 1.0

    def test_read_rejects_junk(self, tmp_path):
        p = tmp_path / "junk.json"
        p.write_text("not json")
        with pytest.raises(ValidationError):
            read_trace_json(p)
        p.write_text('{"no": "events"}')
        with pytest.raises(ValidationError):
            read_trace_json(p)

    def test_events_to_spans_inverts_export(self, tracer):
        data = trace_payload(tracer)
        spans = events_to_spans(data)
        assert sorted(sp.name for sp in spans) == ["cell", "cell", "study.run"]
        root = next(sp for sp in spans if sp.name == "study.run")
        orig = tracer.find("study.run")[0]
        assert root.duration_s == pytest.approx(orig.duration_s, rel=1e-3)
        assert root.attrs == {"cells": 2}
        assert root.depth == 0


class TestValidator:
    def test_flags_bad_events(self):
        bad = {
            "traceEvents": [
                {"ph": "X", "ts": 0, "dur": 1},        # missing name
                {"name": "a", "ph": "?", "ts": 0},      # unknown phase
                {"name": "b", "ph": "X", "ts": -5, "dur": 1},  # bad ts
                {"name": "c", "ph": "X", "ts": 0},      # X without dur
            ]
        }
        problems = validate_chrome_trace(bad)
        assert len(problems) == 4

    def test_not_a_list(self):
        assert validate_chrome_trace({"traceEvents": "nope"}) == [
            "traceEvents is not a list"
        ]


class TestTables:
    def test_phase_table_aggregates_by_name(self, tracer):
        table = phase_table(tracer)
        text = table.to_ascii()
        assert "study.run" in text
        assert "cell" in text
        rows = {row[0]: row for row in table.rows}  # cells are strings
        assert rows["cell"][1] == "2"  # count
        assert float(rows["study.run"][4]) == pytest.approx(100.0)  # % of root

    def test_phase_table_respects_max_depth(self, tracer):
        table = phase_table(tracer, max_depth=0)
        assert [row[0] for row in table.rows] == ["study.run"]

    def test_metrics_table_lists_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z.hits").add(1)
        reg.gauge("a.bytes", unit="B").set(2)
        names = [row[0] for row in metrics_table(reg).rows]
        assert names == ["a.bytes", "z.hits"]
