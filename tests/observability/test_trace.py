"""Span recording, nesting, the disabled fast path, and the
deterministic worker-trace merge."""

import pytest

from repro.observability import trace
from repro.observability.trace import NULL_SPAN, Span, Tracer, tracing


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing disabled."""
    trace.uninstall()
    yield
    trace.uninstall()


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not trace.enabled()
        assert trace.active() is None

    def test_span_returns_shared_null_handle(self):
        assert trace.span("anything", n=1) is NULL_SPAN
        assert trace.span("other") is NULL_SPAN

    def test_null_span_is_inert_context_manager(self):
        with trace.span("x") as sp:
            assert sp is NULL_SPAN
            assert sp.set(a=1) is NULL_SPAN

    def test_null_span_propagates_exceptions(self):
        with pytest.raises(ValueError):
            with trace.span("x"):
                raise ValueError("boom")


class TestRecording:
    def test_span_records_name_attrs_and_times(self):
        with tracing() as tr:
            with trace.span("lower", alg="strassen", n=1024):
                pass
        (sp,) = tr.spans
        assert sp.name == "lower"
        assert sp.attrs == {"alg": "strassen", "n": 1024}
        assert sp.finished
        assert sp.t_end >= sp.t_start
        assert sp.duration_s >= 0.0
        assert sp.cpu_s >= 0.0

    def test_nesting_depth_and_parent_links(self):
        with tracing() as tr:
            with trace.span("outer"):
                with trace.span("mid"):
                    with trace.span("inner"):
                        pass
                with trace.span("mid2"):
                    pass
        outer, mid, inner, mid2 = tr.spans
        assert [sp.depth for sp in tr.spans] == [0, 1, 2, 1]
        assert outer.parent is None
        assert mid.parent == 0
        assert inner.parent == 1
        assert mid2.parent == 0
        assert [sp.name for sp in tr.roots()] == ["outer"]

    def test_set_attaches_attrs_after_creation(self):
        with tracing() as tr:
            with trace.span("cell") as sp:
                sp.set(elapsed=1.5)
        assert tr.spans[0].attrs["elapsed"] == 1.5

    def test_exception_unwinds_open_spans(self):
        with tracing() as tr:
            with pytest.raises(RuntimeError):
                with trace.span("outer"):
                    with trace.span("inner"):
                        raise RuntimeError
        assert tr.open_count == 0
        outer, inner = tr.spans
        assert outer.finished
        # Inner close was skipped by the raise; only the outer handle's
        # __exit__ ran, which unwound the stack.
        assert tr.find("outer") == [outer]

    def test_find_and_len(self):
        with tracing() as tr:
            for _ in range(3):
                with trace.span("cell"):
                    pass
        assert len(tr) == 3
        assert len(tr.find("cell")) == 3
        assert tr.find("nope") == []

    def test_tracing_restores_previous_tracer(self):
        outer_tracer = Tracer()
        with tracing(outer_tracer):
            assert trace.active() is outer_tracer
            with tracing() as inner:
                assert trace.active() is inner
            assert trace.active() is outer_tracer
        assert trace.active() is None


class TestSerialization:
    def test_round_trip_through_dicts(self):
        with tracing() as tr:
            with trace.span("a", k=1):
                with trace.span("b"):
                    pass
        restored = [Span.from_dict(d) for d in tr.export()]
        assert [sp.name for sp in restored] == ["a", "b"]
        assert restored[0].attrs == {"k": 1}
        assert restored[1].parent == 0
        assert restored[0].duration_s == tr.spans[0].duration_s


class TestAttach:
    def _worker_trace(self, label):
        with tracing() as tr:
            with trace.span("cell", label=label):
                with trace.span("simulate"):
                    pass
        return tr.export()

    def test_attach_preserves_structure_under_open_span(self):
        w = self._worker_trace("w0")
        with tracing() as tr:
            with trace.span("study.run"):
                tr.attach(w)
        names = [sp.name for sp in tr.spans]
        assert names == ["study.run", "cell", "simulate"]
        cell = tr.spans[1]
        sim = tr.spans[2]
        assert cell.parent == 0 and cell.depth == 1
        assert sim.parent == 1 and sim.depth == 2
        assert cell.attrs["label"] == "w0"

    def test_attach_order_is_call_order_not_time_order(self):
        w0, w1 = self._worker_trace("w0"), self._worker_trace("w1")
        with tracing() as tr:
            with trace.span("study.run"):
                tr.attach(w1)
                tr.attach(w0)
        labels = [sp.attrs["label"] for sp in tr.find("cell")]
        assert labels == ["w1", "w0"]

    def test_attached_groups_do_not_overlap(self):
        w0, w1 = self._worker_trace("w0"), self._worker_trace("w1")
        with tracing() as tr:
            with trace.span("study.run"):
                tr.attach(w0)
                tr.attach(w1)
        c0, c1 = tr.find("cell")
        assert c1.t_start >= c0.t_end

    def test_attach_preserves_durations(self):
        w = self._worker_trace("w0")
        with tracing() as tr:
            with trace.span("study.run"):
                tr.attach(w)
        (cell,) = tr.find("cell")
        original = Span.from_dict(w[0])
        assert cell.duration_s == pytest.approx(original.duration_s)

    def test_attach_empty_is_noop(self):
        with tracing() as tr:
            tr.attach([])
        assert len(tr) == 0
