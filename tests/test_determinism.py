"""Determinism: identical inputs must produce identical simulations.

The whole reproduction rests on the simulator being a pure function of
its inputs — no wall-clock, no unseeded randomness.  These tests rerun
representative paths and require bit-identical results.
"""

import numpy as np
import pytest

from repro import EnergyPerformanceStudy, StudyConfig
from repro.algorithms import CapsStrassen, StrassenWinograd, paper_algorithms
from repro.runtime.scheduler import Scheduler
from repro.sim import Engine


def test_scheduler_is_deterministic(machine):
    alg = StrassenWinograd(machine)
    a = alg.build(256, threads=4, execute=False)
    b = alg.build(256, threads=4, execute=False)
    sa = Scheduler(machine, 4, execute=False).run(a.graph)
    sb = Scheduler(machine, 4, execute=False).run(b.graph)
    assert sa.makespan == sb.makespan
    assert [(r.tid, r.core, r.start, r.end) for r in sa.records] == [
        (r.tid, r.core, r.start, r.end) for r in sb.records
    ]


def test_steal_policy_deterministic(machine):
    alg = CapsStrassen(machine)
    graphs = [alg.build(256, threads=4, execute=False).graph for _ in range(2)]
    runs = [
        Scheduler(machine, 4, policy="steal", execute=False).run(g) for g in graphs
    ]
    assert runs[0].makespan == runs[1].makespan
    assert runs[0].stats.steals == runs[1].stats.steals


def test_engine_measurements_identical(machine):
    alg = StrassenWinograd(machine)
    engine = Engine(machine)
    m1 = engine.run(alg.build(128, 2, execute=False).graph, 2, execute=False)
    m2 = engine.run(alg.build(128, 2, execute=False).graph, 2, execute=False)
    assert m1.elapsed_s == m2.elapsed_s
    assert m1.energy.package == m2.energy.package
    assert m1.energy.pp0 == m2.energy.pp0
    assert m1.energy.dram == m2.energy.dram


def test_study_reproducible_end_to_end(machine):
    cfg = StudyConfig(sizes=(128,), threads=(1, 2), execute_max_n=128, seed=5)
    r1 = EnergyPerformanceStudy(machine, paper_algorithms(machine), cfg).run()
    r2 = EnergyPerformanceStudy(machine, paper_algorithms(machine), cfg).run()
    for key in r1.runs:
        assert r1.runs[key].elapsed_s == r2.runs[key].elapsed_s
        assert r1.runs[key].energy.package == r2.runs[key].energy.package


def test_numerics_deterministic(machine):
    alg = StrassenWinograd(machine, cutoff=32, grain=32)
    builds = [alg.build(128, threads=4, seed=3) for _ in range(2)]
    engine = Engine(machine)
    for b in builds:
        engine.run(b.graph, threads=4)
    assert np.array_equal(builds[0].c, builds[1].c)


def test_sparse_generators_deterministic():
    from repro.sparse import power_law

    a = power_law(64, avg_degree=5, seed=11)
    b = power_law(64, avg_degree=5, seed=11)
    assert np.array_equal(a.rows, b.rows)
    assert np.array_equal(a.values, b.values)
