"""Topology model."""

import pytest

from repro.machine.topology import CoreId, CoreSpec, MachineTopology, SocketSpec
from repro.util.errors import ConfigurationError


def test_haswell_like_peak():
    topo = MachineTopology.single_socket(4, CoreSpec(flops_per_cycle=16))
    assert topo.total_cores == 4
    assert topo.peak_flops(3.2e9) == pytest.approx(204.8e9)


def test_core_ids_stable_order():
    topo = MachineTopology((SocketSpec(2), SocketSpec(3)))
    ids = topo.core_ids()
    assert ids == sorted(ids)
    assert len(ids) == 5
    assert ids[0] == CoreId(0, 0)
    assert ids[-1] == CoreId(1, 2)


def test_symmetry_detection():
    sym = MachineTopology((SocketSpec(2), SocketSpec(2)))
    asym = MachineTopology((SocketSpec(2), SocketSpec(3)))
    assert sym.is_symmetric
    assert not asym.is_symmetric


def test_core_spec_lookup_and_errors():
    topo = MachineTopology.single_socket(2)
    assert topo.core_spec(CoreId(0, 1)).flops_per_cycle == 16.0
    with pytest.raises(ConfigurationError):
        topo.core_spec(CoreId(1, 0))
    with pytest.raises(ConfigurationError):
        topo.core_spec(CoreId(0, 2))


def test_smt_threads():
    topo = MachineTopology.single_socket(4, CoreSpec(smt_ways=2))
    assert topo.total_hw_threads == 8
    assert topo.total_cores == 4


def test_invalid_configs():
    with pytest.raises(ConfigurationError):
        MachineTopology(())
    with pytest.raises(ConfigurationError):
        SocketSpec(0)
    with pytest.raises(ConfigurationError):
        CoreSpec(smt_ways=0)


def test_core_id_str():
    assert str(CoreId(0, 3)) == "s0c3"
