"""DRAM spec."""

import pytest

from repro.machine.dram import DramSpec
from repro.util.units import GB, GiB


def test_paper_platform_single_channel():
    d = DramSpec()
    assert d.capacity_bytes == 4 * GiB
    assert d.channels == 1
    assert d.peak_bandwidth_bytes_per_s == pytest.approx(12.8 * GB)


def test_sustained_below_peak():
    d = DramSpec()
    assert d.sustained_bandwidth_bytes_per_s < d.peak_bandwidth_bytes_per_s
    assert d.sustained_bandwidth_bytes_per_s == pytest.approx(0.8 * 12.8 * GB)


def test_bandwidth_scales_with_channels():
    one = DramSpec(channels=1)
    two = DramSpec(channels=2)
    assert two.peak_bandwidth_bytes_per_s == 2 * one.peak_bandwidth_bytes_per_s


def test_fits():
    d = DramSpec(capacity_bytes=4 * GiB)
    assert d.fits(3 * GiB)
    assert not d.fits(5 * GiB)


def test_describe():
    assert "12.8" in DramSpec().describe()


@pytest.mark.parametrize("kw", [{"capacity_bytes": 0}, {"channels": 0}, {"sustained_fraction": 0}])
def test_validation(kw):
    with pytest.raises(Exception):
        DramSpec(**kw)
