"""Cache specs and the trace-driven LRU simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.cache import (
    CacheHierarchySim,
    CacheHierarchySpec,
    CacheLevelSpec,
    SetAssociativeCache,
)
from repro.util.errors import ConfigurationError, ValidationError
from repro.util.units import KiB, MiB


def small_level(capacity=1024, line=64, assoc=2, name="L1"):
    return CacheLevelSpec(name, capacity, line, assoc)


class TestSpec:
    def test_num_sets_and_lines(self):
        lv = small_level(capacity=1024, line=64, assoc=2)
        assert lv.num_lines == 16
        assert lv.num_sets == 8

    def test_capacity_divisibility_enforced(self):
        with pytest.raises(ConfigurationError):
            CacheLevelSpec("L1", 1000, 64, 3)

    def test_line_power_of_two(self):
        with pytest.raises(ConfigurationError):
            CacheLevelSpec("L1", 1024, 48, 2)

    def test_fits(self):
        assert small_level(capacity=1024).fits(1024)
        assert not small_level(capacity=1024).fits(1025)

    def test_hierarchy_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchySpec(
                (small_level(capacity=2048, name="L1"), small_level(capacity=1024, name="L2"))
            )

    def test_haswell_like(self):
        h = CacheHierarchySpec.haswell_like()
        assert h.level("L1").capacity_bytes == 32 * KiB
        assert h.level("L3").capacity_bytes == 8 * MiB
        assert h.level("L3").shared and not h.level("L1").shared
        assert h.last_level_capacity == 8 * MiB
        with pytest.raises(ValidationError):
            h.level("L4")

    def test_smallest_level_containing(self):
        h = CacheHierarchySpec.haswell_like()
        assert h.smallest_level_containing(16 * KiB).name == "L1"
        assert h.smallest_level_containing(1 * MiB).name == "L3"
        assert h.smallest_level_containing(64 * MiB) is None


class TestLru:
    def test_miss_then_hit(self):
        c = SetAssociativeCache(small_level())
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.hits == 1 and c.misses == 1

    def test_same_line_hits(self):
        c = SetAssociativeCache(small_level(line=64))
        c.access(0)
        assert c.access(63) is True  # same 64B line
        assert c.access(64) is False  # next line

    def test_lru_eviction_order(self):
        # 2-way sets; three lines mapping to the same set evict the LRU.
        lv = small_level(capacity=1024, line=64, assoc=2)  # 8 sets
        c = SetAssociativeCache(lv)
        s = lv.num_sets * lv.line_bytes  # stride that stays in one set
        c.access(0)        # A
        c.access(s)        # B
        c.access(0)        # touch A -> B is now LRU
        c.access(2 * s)    # C evicts B
        assert c.contains(0)
        assert not c.contains(s)
        assert c.contains(2 * s)

    def test_full_associativity_within_set(self):
        lv = small_level(capacity=512, line=64, assoc=8)  # one set, 8 ways
        c = SetAssociativeCache(lv)
        for i in range(8):
            c.access(i * 64)
        c.reset_counters()
        for i in range(8):
            assert c.access(i * 64) is True
        assert c.miss_ratio == 0.0

    def test_flush(self):
        c = SetAssociativeCache(small_level())
        c.access(0)
        c.flush()
        assert not c.contains(0)
        assert c.accesses == 0

    def test_capacity_miss_on_large_working_set(self):
        lv = small_level(capacity=1024, line=64, assoc=2)
        c = SetAssociativeCache(lv)
        # Stream 4x the capacity twice: second pass still misses (LRU).
        span = 4 * lv.capacity_bytes
        for _ in range(2):
            for addr in range(0, span, 64):
                c.access(addr)
        assert c.miss_ratio == 1.0


class TestHierarchySim:
    def _sim(self):
        return CacheHierarchySim(
            CacheHierarchySpec(
                (
                    CacheLevelSpec("L1", 1024, 64, 2),
                    CacheLevelSpec("L2", 4096, 64, 4),
                )
            )
        )

    def test_cold_miss_goes_to_memory(self):
        sim = self._sim()
        res = sim.access(0)
        assert res.is_memory
        assert sim.memory_bytes == 64

    def test_l1_hit_after_fill(self):
        sim = self._sim()
        sim.access(0)
        res = sim.access(0)
        assert res.hit_level == "L1"
        assert sim.memory_bytes == 64  # unchanged

    def test_l2_hit_after_l1_eviction(self):
        sim = self._sim()
        sim.access(0)
        # Evict line 0 from L1 (capacity 1024) but keep it in L2 (4096).
        for addr in range(1024, 3 * 1024, 64):
            sim.access(addr)
        res = sim.access(0)
        assert res.hit_level == "L2"

    def test_traffic_accounting(self):
        sim = self._sim()
        sim.access_range(0, 512, stride=8)  # 8 lines
        t = sim.traffic_by_level()
        assert t["L1"] == 8 * 64
        assert t["L2"] == 8 * 64
        assert t["MEM"] == 8 * 64

    def test_flush_resets(self):
        sim = self._sim()
        sim.access(0)
        sim.flush()
        assert sim.traffic_by_level() == {"L1": 0, "L2": 0, "MEM": 0}
        assert sim.access(0).is_memory


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1, max_size=200))
def test_lru_hit_plus_miss_equals_accesses(trace):
    c = SetAssociativeCache(small_level())
    for addr in trace:
        c.access(addr)
    assert c.hits + c.misses == len(trace)
    assert 0.0 <= c.miss_ratio <= 1.0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**16), min_size=1, max_size=100))
def test_fully_assoc_cache_never_misses_repeat_within_capacity(trace):
    # A cache large enough for the whole trace footprint: the second
    # replay of the trace must be all hits.
    lv = CacheLevelSpec("L1", 2**18, 64, 4096)
    c = SetAssociativeCache(lv)
    for addr in trace:
        c.access(addr)
    c.reset_counters()
    for addr in trace:
        assert c.access(addr) is True


class TestWriteBack:
    def test_store_marks_dirty(self):
        c = SetAssociativeCache(small_level())
        c.access(0, write=True)
        assert c.is_dirty(0)
        c.access(64, write=False)
        assert not c.is_dirty(64)

    def test_dirty_eviction_counts_writeback(self):
        lv = small_level(capacity=1024, line=64, assoc=2)  # 8 sets
        c = SetAssociativeCache(lv)
        s = lv.num_sets * lv.line_bytes
        c.access(0, write=True)
        c.access(s)
        c.access(2 * s)  # evicts dirty line 0
        assert c.writebacks == 1
        assert c.writeback_bytes == 64

    def test_clean_eviction_free(self):
        lv = small_level(capacity=1024, line=64, assoc=2)
        c = SetAssociativeCache(lv)
        s = lv.num_sets * lv.line_bytes
        c.access(0)
        c.access(s)
        c.access(2 * s)
        assert c.writebacks == 0

    def test_rewritten_line_single_writeback(self):
        lv = small_level(capacity=1024, line=64, assoc=2)
        c = SetAssociativeCache(lv)
        s = lv.num_sets * lv.line_bytes
        c.access(0, write=True)
        c.access(0, write=True)  # still one dirty line
        c.access(s)
        c.access(2 * s)
        assert c.writebacks == 1

    def test_hierarchy_writeback_accounting(self):
        sim = CacheHierarchySim(
            CacheHierarchySpec(
                (CacheLevelSpec("L1", 512, 64, 2), CacheLevelSpec("L2", 4096, 64, 4))
            )
        )
        # Write a stream 4x the L1 capacity: dirty L1 evictions occur.
        sim.access_range(0, 2048, stride=64, write=True)
        wb = sim.writeback_bytes_by_level()
        assert wb["L1"] > 0


class TestPrefetch:
    def _spec(self):
        return CacheHierarchySpec(
            (CacheLevelSpec("L1", 1024, 64, 2), CacheLevelSpec("L2", 8192, 64, 4))
        )

    def test_streaming_demand_misses_halve(self):
        base = CacheHierarchySim(self._spec(), prefetch=False)
        pf = CacheHierarchySim(self._spec(), prefetch=True)
        nbytes = 16 * 1024
        base.access_range(0, nbytes, stride=64)
        pf.access_range(0, nbytes, stride=64)
        assert pf.caches[0].misses < base.caches[0].misses
        # Next-line prefetch turns almost every other miss into a hit.
        assert pf.caches[0].misses <= base.caches[0].misses // 2 + 2

    def test_prefetch_traffic_counted(self):
        pf = CacheHierarchySim(self._spec(), prefetch=True)
        pf.access_range(0, 4096, stride=64)
        assert pf.prefetch_bytes > 0

    def test_prefetch_off_by_default(self):
        sim = CacheHierarchySim(self._spec())
        sim.access_range(0, 4096, stride=64)
        assert sim.prefetch_bytes == 0

    def test_flush_clears_prefetch_counter(self):
        pf = CacheHierarchySim(self._spec(), prefetch=True)
        pf.access_range(0, 4096, stride=64)
        pf.flush()
        assert pf.prefetch_bytes == 0
