"""DVFS governors."""

import pytest

from repro.machine.frequency import FrequencyDomain, PState
from repro.machine.governor import (
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    governed_machine,
)
from repro.machine.specs import haswell_e3_1225
from repro.util.errors import ConfigurationError
from repro.util.units import GHZ


def dvfs_machine():
    """The paper's machine with power saving re-enabled (3 P-states)."""
    from dataclasses import replace

    domain = FrequencyDomain(
        (PState(1.6 * GHZ, 0.8), PState(2.4 * GHZ, 0.9), PState(3.2 * GHZ, 1.0)),
        active_index=2,
        power_saving_enabled=True,
    )
    return replace(haswell_e3_1225(), frequency=domain)


def test_performance_pins_top():
    gov = PerformanceGovernor()
    assert gov.choose(0.0, 3) == 2
    assert gov.choose(1.0, 3) == 2


def test_powersave_pins_bottom():
    gov = PowersaveGovernor()
    assert gov.choose(1.0, 3) == 0


def test_ondemand_thresholds():
    gov = OndemandGovernor(up_threshold=0.8)
    assert gov.choose(0.9, 3) == 2  # above threshold: top
    assert gov.choose(0.8, 3) == 2
    assert gov.choose(0.05, 3) == 0  # nearly idle: bottom
    # Mid-load lands in between.
    assert 0 <= gov.choose(0.4, 3) <= 2


def test_ondemand_monotone_in_utilization():
    gov = OndemandGovernor()
    choices = [gov.choose(u / 10, 4) for u in range(11)]
    assert choices == sorted(choices)


def test_utilization_validated():
    with pytest.raises(Exception):
        PerformanceGovernor().choose(1.5, 3)


def test_governed_machine_repins_state():
    m = dvfs_machine()
    slow = governed_machine(m, PowersaveGovernor(), utilization=0.9)
    assert slow.frequency.frequency_hz == pytest.approx(1.6 * GHZ)
    assert slow.core_peak_flops < m.core_peak_flops
    assert slow.dvfs_factor < 1.0


def test_governed_machine_performance_noop_frequency():
    m = dvfs_machine()
    fast = governed_machine(m, PerformanceGovernor(), utilization=0.1)
    assert fast.frequency.frequency_hz == m.frequency.frequency_hz


def test_single_pstate_machine_rejects_reactive_governors():
    """The shipped Haswell spec has BIOS power saving disabled — a
    reactive governor has nothing to govern (the paper's setup)."""
    m = haswell_e3_1225()
    with pytest.raises(ConfigurationError):
        governed_machine(m, OndemandGovernor(), utilization=0.5)
    # performance governor keeps the frequency and is allowed.
    governed = governed_machine(m, PerformanceGovernor(), 0.5)
    assert governed.frequency.frequency_hz == m.frequency.frequency_hz


def test_governed_frequency_monotone_in_utilization():
    """Across a fine utilization sweep, the ondemand-governed machine's
    frequency never decreases as load rises — each governor step moves
    the clock monotonically."""
    m = dvfs_machine()
    gov = OndemandGovernor(up_threshold=0.8)
    freqs = [
        governed_machine(m, gov, utilization=u / 20).frequency.frequency_hz
        for u in range(21)
    ]
    assert freqs == sorted(freqs)
    assert freqs[0] == pytest.approx(1.6 * GHZ)  # idle -> bottom state
    assert freqs[-1] == pytest.approx(3.2 * GHZ)  # saturated -> top state


def test_governed_energy_continuous_in_utilization():
    """Simulated energy for a fixed workload, as a function of the
    utilization the governor reacts to, changes only at P-state
    boundaries and by bounded steps — re-governing must never produce a
    wild energy discontinuity."""
    from repro.algorithms import BlockedGemm
    from repro.sim import Engine

    m = dvfs_machine()
    gov = OndemandGovernor(up_threshold=0.8)
    build = BlockedGemm(m).build(128, threads=2, execute=False)
    energies = []
    for u in range(0, 21, 2):
        gm = governed_machine(m, gov, utilization=u / 20)
        energies.append(Engine(gm).run(build.graph, threads=2, execute=False).energy.package)
    for a, b in zip(energies, energies[1:]):
        assert abs(b - a) / max(a, b) < 0.35, energies


def test_governor_transition_preserves_machine_identity():
    """governed_machine only re-pins the frequency domain: topology,
    caches and the energy model are shared, so a transition cannot
    silently swap the platform."""
    m = dvfs_machine()
    gm = governed_machine(m, PowersaveGovernor(), utilization=0.5)
    assert gm.topology is m.topology
    assert gm.caches is m.caches
    assert gm.frequency.power_saving_enabled
    assert gm.frequency.pstates == m.frequency.pstates  # same ladder


def test_governed_run_trades_time_for_power(machine):
    """End to end: the same graph at the powersave state runs longer
    and draws fewer watts."""
    from repro.algorithms import BlockedGemm
    from repro.sim import Engine

    m = dvfs_machine()
    alg = BlockedGemm(m)
    build = alg.build(256, threads=4, execute=False)
    nominal = Engine(m).run(build.graph, threads=4, execute=False)
    slow_m = governed_machine(m, PowersaveGovernor(), nominal.stats.utilization)
    slow = Engine(slow_m).run(build.graph, threads=4, execute=False)
    assert slow.elapsed_s > nominal.elapsed_s
    assert slow.avg_power_w() < nominal.avg_power_w()
