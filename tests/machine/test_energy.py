"""Energy model: plane attribution and invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.energy import Activity, EnergyModel, PlaneEnergy
from repro.util.errors import ValidationError


def model():
    return EnergyModel(
        package_static_w=10.0,
        core_active_w=2.0,
        j_per_flop=100e-12,
        j_per_byte_l1=5e-12,
        j_per_byte_l2=10e-12,
        j_per_byte_l3=20e-12,
        uncore_j_per_dram_byte=50e-12,
        dram_static_w=1.0,
        dram_j_per_byte=30e-12,
    )


def test_idle_energy_is_static_only():
    e = model().idle_energy(2.0)
    assert e.package == pytest.approx(20.0)
    assert e.pp0 == 0.0
    assert e.dram == pytest.approx(2.0)


def test_idle_power():
    w = model().idle_power_w()
    assert w["PACKAGE"] == 10.0
    assert w["PP0"] == 0.0
    assert w["DRAM"] == 1.0


def test_interval_energy_hand_computed():
    act = Activity(
        dt=1.0,
        busy_core_seconds=2.0,
        flops=1e9,
        bytes_l1=1e9,
        bytes_l2=1e9,
        bytes_l3=1e9,
        bytes_dram=1e9,
    )
    e = model().interval_energy(act)
    # PP0 = 2*2.0 + 0.1 + 0.005*1000... : cores 4.0 + flop 0.1 + l1 0.005*... compute explicitly
    expected_pp0 = 2 * 2.0 + 1e9 * 100e-12 + 1e9 * 5e-12 + 1e9 * 10e-12
    assert e.pp0 == pytest.approx(expected_pp0)
    expected_uncore = 1e9 * 20e-12 + 1e9 * 50e-12
    assert e.package == pytest.approx(10.0 + expected_pp0 + expected_uncore)
    assert e.dram == pytest.approx(1.0 + 1e9 * 30e-12)


def test_package_contains_pp0():
    act = Activity(dt=0.5, busy_core_seconds=1.0, flops=1e8)
    e = model().interval_energy(act)
    assert e.package >= e.pp0


def test_total_excludes_double_counting():
    e = PlaneEnergy(package=10.0, pp0=6.0, dram=2.0)
    assert e.total == 12.0  # package + dram, NOT + pp0


def test_plane_energy_addition():
    a = PlaneEnergy(1.0, 0.5, 0.2)
    b = PlaneEnergy(2.0, 1.0, 0.3)
    c = a + b
    assert (c.package, c.pp0, c.dram) == (3.0, 1.5, 0.5)


def test_dvfs_factor_scales_dynamic_not_static():
    act = Activity(dt=1.0, busy_core_seconds=1.0, flops=1e9)
    full = model().interval_energy(act, dvfs_factor=1.0)
    half = model().interval_energy(act, dvfs_factor=0.5)
    assert half.pp0 == pytest.approx(full.pp0 / 2)
    # Static part of package is unscaled.
    assert half.package == pytest.approx(10.0 + (full.package - 10.0) / 2)


def test_invalid_dvfs_factor():
    with pytest.raises(ValidationError):
        model().interval_energy(Activity(dt=1.0), dvfs_factor=0.0)


def test_negative_activity_rejected():
    with pytest.raises(ValidationError):
        Activity(dt=-1.0)
    with pytest.raises(ValidationError):
        Activity(dt=1.0, flops=-5)


def test_replace():
    m2 = model().replace(package_static_w=99.0)
    assert m2.package_static_w == 99.0
    assert m2.core_active_w == model().core_active_w


@settings(max_examples=30, deadline=None)
@given(
    dt=st.floats(min_value=1e-6, max_value=10),
    busy=st.floats(min_value=0, max_value=40),
    flops=st.floats(min_value=0, max_value=1e12),
    dram=st.floats(min_value=0, max_value=1e10),
)
def test_energy_additivity_over_interval_split(dt, busy, flops, dram):
    """Splitting an interval in two must conserve every plane's energy."""
    m = model()
    whole = m.interval_energy(Activity(dt, busy, flops, 0, 0, 0, dram))
    h1 = m.interval_energy(Activity(dt / 2, busy / 2, flops / 2, 0, 0, 0, dram / 2))
    h2 = m.interval_energy(Activity(dt / 2, busy / 2, flops / 2, 0, 0, 0, dram / 2))
    both = h1 + h2
    assert both.package == pytest.approx(whole.package, rel=1e-9)
    assert both.pp0 == pytest.approx(whole.pp0, rel=1e-9, abs=1e-12)
    assert both.dram == pytest.approx(whole.dram, rel=1e-9)
