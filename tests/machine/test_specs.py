"""Machine specs: the Haswell platform and generic SMPs."""

import pytest

from repro.machine.energy import EnergyModel
from repro.machine.specs import generic_smp, haswell_e3_1225
from repro.util.units import GiB, MiB


def test_haswell_matches_paper_platform():
    m = haswell_e3_1225()
    assert m.cores == 4
    assert m.frequency.frequency_hz == pytest.approx(3.2e9)
    assert m.caches.last_level_capacity == 8 * MiB
    assert m.dram.capacity_bytes == 4 * GiB
    assert m.dram.channels == 1
    assert not m.frequency.power_saving_enabled  # BIOS power saving off


def test_haswell_peak_flops():
    m = haswell_e3_1225()
    assert m.core_peak_flops == pytest.approx(51.2e9)
    assert m.machine_peak_flops == pytest.approx(204.8e9)


def test_compute_to_memory_ratio_is_high():
    # The paper: "relatively high compute-to-memory ratio" — the single
    # DDR3 channel gives ~20 flop per DRAM byte.
    m = haswell_e3_1225()
    assert m.compute_to_memory_ratio() > 15


def test_with_cores():
    m = haswell_e3_1225().with_cores(8)
    assert m.cores == 8
    assert m.machine_peak_flops == pytest.approx(2 * 204.8e9)
    assert haswell_e3_1225().cores == 4


def test_with_energy():
    custom = EnergyModel(package_static_w=42.0)
    m = haswell_e3_1225().with_energy(custom)
    assert m.energy.package_static_w == 42.0


def test_generic_smp():
    m = generic_smp(cores=16, dram_channels=4)
    assert m.cores == 16
    assert m.dram.channels == 4
    assert m.name == "generic-smp-16c"


def test_dvfs_factor_nominal_is_one():
    assert haswell_e3_1225().dvfs_factor == pytest.approx(1.0)


def test_describe_mentions_key_figures():
    text = haswell_e3_1225().describe()
    assert "204.8" in text
    assert "8 MiB" in text
    assert "4 GiB" in text


class TestDualSocket:
    def test_topology(self):
        from repro.machine import dual_socket_haswell

        m = dual_socket_haswell()
        assert m.cores == 8
        assert len(m.topology.sockets) == 2
        assert m.topology.is_symmetric
        assert m.dram.channels == 2

    def test_scaling_study_runs(self):
        """The dual-socket sibling answers the §VIII 'larger platforms'
        question: eight threads on two sockets with two channels."""
        from repro import EnergyPerformanceStudy, StudyConfig
        from repro.machine import dual_socket_haswell

        m = dual_socket_haswell()
        cfg = StudyConfig(sizes=(256,), threads=(1, 8), execute_max_n=0, verify=False)
        result = EnergyPerformanceStudy(m, config=cfg).run()
        # Eight threads still scale the baseline well beyond four.
        assert result.speedup("openblas", 256, 8) > 5.0
