"""Frequency domains and DVFS."""

import pytest

from repro.machine.frequency import FrequencyDomain, PState, fixed_frequency
from repro.util.errors import ConfigurationError
from repro.util.units import GHZ


def test_fixed_frequency_defaults():
    dom = fixed_frequency()
    assert dom.frequency_hz == 3.2 * GHZ
    assert not dom.power_saving_enabled
    assert len(dom.pstates) == 1


def test_pstate_validation():
    with pytest.raises(Exception):
        PState(0.0)
    with pytest.raises(Exception):
        PState(1e9, voltage=0)


def test_dynamic_power_factor_fv2():
    p = PState(2e9, voltage=0.9)
    assert p.dynamic_power_factor == pytest.approx(2e9 * 0.81)


def _dvfs():
    return FrequencyDomain(
        (PState(1.6 * GHZ, 0.8), PState(2.4 * GHZ, 0.9), PState(3.2 * GHZ, 1.0)),
        active_index=2,
        power_saving_enabled=True,
    )


def test_pstates_must_be_sorted():
    with pytest.raises(ConfigurationError):
        FrequencyDomain((PState(3e9), PState(2e9)))


def test_active_index_bounds():
    with pytest.raises(ConfigurationError):
        FrequencyDomain((PState(1e9),), active_index=1)


def test_at_state_returns_new_domain():
    dom = _dvfs()
    low = dom.at_state(0)
    assert low.frequency_hz == 1.6 * GHZ
    assert dom.frequency_hz == 3.2 * GHZ  # original untouched
    with pytest.raises(ConfigurationError):
        dom.at_state(5)


def test_scaled_dynamic_power_monotone_in_pstate():
    dom = _dvfs()
    powers = [dom.at_state(i).scaled_dynamic_power(10.0) for i in range(3)]
    assert powers == sorted(powers)
    assert powers[2] == pytest.approx(10.0)  # nominal state = quoted power


def test_cycles_to_seconds():
    dom = fixed_frequency(2e9)
    assert dom.cycles_to_seconds(4e9) == pytest.approx(2.0)


def test_describe_mentions_mode():
    assert "fixed" in fixed_frequency().describe()
    assert "DVFS" in _dvfs().describe()


# ---------------------------------------------------------------------------
# DVFS transitions: monotone frequency ladders, continuous energy


def _ladder(k: int = 9) -> FrequencyDomain:
    """A dense P-state ladder, 1.6 -> 3.2 GHz with voltage ~ linear in
    frequency (the classic DVFS operating curve)."""
    states = []
    for i in range(k):
        f = 1.6 * GHZ + (3.2 - 1.6) * GHZ * i / (k - 1)
        v = 0.8 + 0.2 * i / (k - 1)
        states.append(PState(f, v))
    return FrequencyDomain(tuple(states), active_index=k - 1, power_saving_enabled=True)


def _dvfs_machine(domain: FrequencyDomain):
    from dataclasses import replace

    from repro.machine.specs import haswell_e3_1225

    return replace(haswell_e3_1225(), frequency=domain)


def _run_at_state(domain: FrequencyDomain, index: int):
    """Simulate the same workload with the domain pinned to *index*."""
    from repro.algorithms import BlockedGemm

    machine = _dvfs_machine(domain.at_state(index))
    build = BlockedGemm(machine).build(128, threads=2, execute=False)
    from repro.sim import Engine

    return Engine(machine).run(build.graph, threads=2, execute=False)


def test_frequency_and_dynamic_power_monotone_along_ladder():
    """Stepping the governor up one P-state at a time must raise the
    clock and the scaled dynamic power monotonically — a transition
    can never move frequency and power in opposite directions."""
    dom = _ladder()
    freqs = [dom.at_state(i).frequency_hz for i in range(len(dom.pstates))]
    powers = [dom.at_state(i).scaled_dynamic_power(10.0) for i in range(len(dom.pstates))]
    assert freqs == sorted(freqs) and len(set(freqs)) == len(freqs)
    assert powers == sorted(powers) and len(set(powers)) == len(powers)


def test_simulated_time_monotone_across_pstates():
    """The same workload never gets slower at a higher P-state."""
    dom = _ladder(5)
    elapsed = [_run_at_state(dom, i).elapsed_s for i in range(5)]
    assert elapsed == sorted(elapsed, reverse=True)


def test_energy_varies_continuously_across_adjacent_pstates():
    """Energy as a function of the governed P-state has no jumps: on a
    dense ladder, adjacent states differ by a bounded relative step
    (discrete continuity).  A transition-handling bug — e.g. applying
    the new frequency to time but not to power — shows up as an O(1)
    discontinuity somewhere along the ladder."""
    dom = _ladder(9)
    energies = [_run_at_state(dom, i).energy.package for i in range(9)]
    for a, b in zip(energies, energies[1:]):
        assert abs(b - a) / max(a, b) < 0.20, energies


def test_energy_integral_continuous_across_a_transition():
    """Splice a run at P-state i and a run at P-state i+1 into one
    timeline (a modelled DVFS transition at the splice point): the
    concatenated power trace must integrate to exactly the sum of the
    two runs' energies — no energy created or lost at the boundary."""
    from repro.power.planes import Plane
    from repro.power.sampling import PowerSegment, PowerTrace

    dom = _ladder(5)
    low = _run_at_state(dom, 1)
    high = _run_at_state(dom, 2)
    offset = low.trace.t_end
    shifted = [
        PowerSegment(seg.t_start + offset, seg.t_end + offset, seg.watts)
        for seg in high.trace.segments
    ]
    spliced = PowerTrace.concat([low.trace, PowerTrace(shifted)])
    for plane in (Plane.PACKAGE, Plane.PP0, Plane.DRAM):
        total = low.trace.energy(plane) + high.trace.energy(plane)
        assert spliced.energy(plane) == pytest.approx(total, rel=1e-12)
    # The spliced timeline is gap-free: its span is the sum of spans.
    assert spliced.duration == pytest.approx(
        low.trace.duration + high.trace.duration, rel=1e-12
    )
    # Instantaneous power just after the transition is the high-state
    # power, not a blend or a zero gap.
    eps = high.trace.duration * 1e-6
    assert spliced.power_at(offset + eps, Plane.PACKAGE) == pytest.approx(
        high.trace.power_at(eps, Plane.PACKAGE)
    )
