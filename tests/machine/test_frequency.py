"""Frequency domains and DVFS."""

import pytest

from repro.machine.frequency import FrequencyDomain, PState, fixed_frequency
from repro.util.errors import ConfigurationError
from repro.util.units import GHZ


def test_fixed_frequency_defaults():
    dom = fixed_frequency()
    assert dom.frequency_hz == 3.2 * GHZ
    assert not dom.power_saving_enabled
    assert len(dom.pstates) == 1


def test_pstate_validation():
    with pytest.raises(Exception):
        PState(0.0)
    with pytest.raises(Exception):
        PState(1e9, voltage=0)


def test_dynamic_power_factor_fv2():
    p = PState(2e9, voltage=0.9)
    assert p.dynamic_power_factor == pytest.approx(2e9 * 0.81)


def _dvfs():
    return FrequencyDomain(
        (PState(1.6 * GHZ, 0.8), PState(2.4 * GHZ, 0.9), PState(3.2 * GHZ, 1.0)),
        active_index=2,
        power_saving_enabled=True,
    )


def test_pstates_must_be_sorted():
    with pytest.raises(ConfigurationError):
        FrequencyDomain((PState(3e9), PState(2e9)))


def test_active_index_bounds():
    with pytest.raises(ConfigurationError):
        FrequencyDomain((PState(1e9),), active_index=1)


def test_at_state_returns_new_domain():
    dom = _dvfs()
    low = dom.at_state(0)
    assert low.frequency_hz == 1.6 * GHZ
    assert dom.frequency_hz == 3.2 * GHZ  # original untouched
    with pytest.raises(ConfigurationError):
        dom.at_state(5)


def test_scaled_dynamic_power_monotone_in_pstate():
    dom = _dvfs()
    powers = [dom.at_state(i).scaled_dynamic_power(10.0) for i in range(3)]
    assert powers == sorted(powers)
    assert powers[2] == pytest.approx(10.0)  # nominal state = quoted power


def test_cycles_to_seconds():
    dom = fixed_frequency(2e9)
    assert dom.cycles_to_seconds(4e9) == pytest.approx(2.0)


def test_describe_mentions_mode():
    assert "fixed" in fixed_frequency().describe()
    assert "DVFS" in _dvfs().describe()
