"""Roofline helpers."""

import pytest

from repro.machine.roofline import attainable_flops, locate, ridge_intensity
from repro.runtime.cost import TaskCost


def test_ridge_point_haswell(machine):
    # 204.8 Gflop/s over 10.24 GB/s = 20 flop/byte.
    assert ridge_intensity(machine) == pytest.approx(20.0)


def test_ridge_moves_with_cores(machine):
    assert ridge_intensity(machine, cores=1) == pytest.approx(5.0)
    assert ridge_intensity(machine, cores=1) < ridge_intensity(machine, cores=4)


def test_attainable_capped_by_peak(machine):
    assert attainable_flops(machine, 1000.0) == pytest.approx(
        machine.machine_peak_flops
    )


def test_attainable_bandwidth_limited(machine):
    assert attainable_flops(machine, 1.0) == pytest.approx(machine.dram_bandwidth)


def test_attainable_continuous_at_ridge(machine):
    ridge = ridge_intensity(machine)
    assert attainable_flops(machine, ridge) == pytest.approx(
        machine.machine_peak_flops
    )


def test_locate_addition_is_bandwidth_bound(machine):
    from repro.algorithms.kernels import addition_cost

    cost = addition_cost(512, 1, machine, locality=0.0)
    point = locate(machine, cost)
    assert not point.is_compute_bound
    assert point.attainable_flops < machine.machine_peak_flops / 100


def test_locate_cache_resident_is_compute_bound(machine):
    cost = TaskCost(flops=1e9)  # no DRAM traffic at all
    point = locate(machine, cost)
    assert point.is_compute_bound
    assert point.intensity == float("inf")


def test_locate_blocked_gemm_is_compute_bound_at_one_core(machine):
    from repro.algorithms.blocked import BlockedGemm

    alg = BlockedGemm(machine)
    total = alg.build(1024, threads=1, execute=False).graph.total_cost()
    assert locate(machine, total, cores=1).is_compute_bound


def test_locate_spmv_is_bandwidth_bound(machine):
    from repro.sparse import banded, CSRMatrix
    from repro.sparse.spmv import spmv_chunk_cost

    csr = CSRMatrix.from_coo(banded(512, 4, seed=1))
    cost = spmv_chunk_cost(csr, machine, 0, 512)
    assert not locate(machine, cost).is_compute_bound
