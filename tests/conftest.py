"""Shared fixtures for the repro test suite."""

import pytest

from repro.machine import haswell_e3_1225, generic_smp
from repro.sim import Engine


@pytest.fixture(scope="session")
def machine():
    """The paper's platform spec (immutable; safe to share)."""
    return haswell_e3_1225()


@pytest.fixture(scope="session")
def big_machine():
    """A larger generic SMP for sweeps beyond four cores."""
    return generic_smp(cores=16)


@pytest.fixture()
def engine(machine):
    return Engine(machine)


@pytest.fixture(autouse=True)
def _fresh_fallback_warning():
    """Isolate the shm/compiled fallback warn-once latches between tests.

    The latches are process-global: without this reset, whichever test
    first triggers a fallback would silence the warning for every
    later test and make warning assertions order-dependent.
    """
    from repro.runtime.compiledpath import (
        reset_fallback_warning as reset_compiled,
    )
    from repro.runtime.shm import reset_fallback_warning

    reset_fallback_warning()
    reset_compiled()
    yield
    reset_fallback_warning()
    reset_compiled()


# Hypothesis profiles: default stays fast; REPRO_THOROUGH=1 widens the
# search for nightly-style runs.
import os

from hypothesis import settings

settings.register_profile("thorough", max_examples=300, deadline=None)
settings.register_profile("default", max_examples=50, deadline=None)
settings.load_profile(
    "thorough" if os.environ.get("REPRO_THOROUGH") == "1" else "default"
)
