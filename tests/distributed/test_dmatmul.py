"""Distributed matmul models."""

import pytest

from repro.distributed.dmatmul import CapsDistributed, Summa25D, Summa2D
from repro.distributed.network import ClusterSpec
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def cluster():
    return ClusterSpec()


def test_summa_flops_divide_evenly(cluster):
    alg = Summa2D(cluster)
    p1 = alg.rank_profile(4096, 1)
    p16 = alg.rank_profile(4096, 16)
    assert p16.flops == pytest.approx(p1.flops / 16)


def test_summa_comm_shrinks_with_grid(cluster):
    alg = Summa2D(cluster)
    c4 = alg.rank_profile(8192, 4).comm.link_bytes
    c16 = alg.rank_profile(8192, 16).comm.link_bytes
    assert c16 == pytest.approx(c4 / 2)  # ~ n^2/sqrt(P)


def test_25d_beats_2d_communication(cluster):
    p = 64
    two_d = Summa2D(cluster).rank_profile(8192, p).comm.link_bytes
    two_5d = Summa25D(cluster, c=4).rank_profile(8192, p).comm.link_bytes
    assert two_5d == pytest.approx(two_d / 2)  # sqrt(c) reduction


def test_25d_effective_c_caps_to_divisor(cluster):
    alg = Summa25D(cluster, c=4)
    assert alg.effective_c(1) == 1
    assert alg.effective_c(6) == 3
    assert alg.effective_c(64) == 4


def test_25d_memory_grows_with_c(cluster):
    base = Summa2D(cluster).memory_words_per_rank(8192, 64)
    repl = Summa25D(cluster, c=4).memory_words_per_rank(8192, 64)
    assert repl == pytest.approx(4 * base)


def test_caps_fewer_flops_than_classical(cluster):
    p = 49
    caps = CapsDistributed(cluster).rank_profile(8192, p)
    summa = Summa2D(cluster).rank_profile(8192, p)
    assert caps.flops < summa.flops


def test_caps_less_communication(cluster):
    p = 49
    caps = CapsDistributed(cluster).rank_profile(8192, p)
    summa = Summa2D(cluster).rank_profile(8192, p)
    assert caps.comm.link_bytes < summa.comm.link_bytes


def test_caps_memory_blowup(cluster):
    """BFS replication: CAPS needs more memory per rank."""
    caps = CapsDistributed(cluster)
    summa = Summa2D(cluster)
    assert caps.memory_words_per_rank(8192, 49) > summa.memory_words_per_rank(8192, 49)


def test_memory_gate(cluster):
    with pytest.raises(ConfigurationError):
        Summa2D(cluster).rank_profile(65536, 1)


def test_comm_fraction_grows_with_ranks(cluster):
    alg = Summa2D(cluster)
    f4 = alg.rank_profile(8192, 4).comm_fraction
    f256 = alg.rank_profile(8192, 256).comm_fraction
    assert 0 < f4 < f256 < 1


def test_profile_time_is_compute_plus_comm(cluster):
    p = Summa2D(cluster).rank_profile(4096, 16)
    assert p.time_s == pytest.approx(p.compute_time_s + p.comm.time_s)
