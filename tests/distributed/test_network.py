"""Interconnect and cluster specs."""

import pytest

from repro.distributed.network import ClusterSpec, InterconnectSpec


def test_alpha_beta_transfer_time():
    net = InterconnectSpec(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
    assert net.transfer_time_s(1e9) == pytest.approx(1.0 + 1e-6)
    assert net.transfer_time_s(1e9, messages=10) == pytest.approx(1.0 + 1e-5)


def test_zero_bytes_costs_latency_only():
    net = InterconnectSpec(latency_s=2e-6)
    assert net.transfer_time_s(0) == pytest.approx(2e-6)


def test_transfer_energy():
    net = InterconnectSpec(j_per_byte=1e-9)
    assert net.transfer_energy_j(1e9) == pytest.approx(1.0)


def test_cluster_defaults_use_haswell_node():
    cl = ClusterSpec()
    assert cl.node.cores == 4
    assert cl.node_memory_words() == pytest.approx(4 * 2**30 / 8)


def test_cluster_node_limit():
    cl = ClusterSpec(max_nodes=8)
    assert cl.validate_nodes(8) == 8
    with pytest.raises(ValueError):
        cl.validate_nodes(9)


def test_validation():
    with pytest.raises(Exception):
        InterconnectSpec(bandwidth_bytes_per_s=0)
    with pytest.raises(Exception):
        InterconnectSpec(latency_s=-1)
