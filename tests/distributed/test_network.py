"""Interconnect and cluster specs."""

import numpy as np
import pytest

from repro.distributed.network import ClusterSpec, InterconnectSpec, Topology


def test_alpha_beta_transfer_time():
    net = InterconnectSpec(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
    assert net.transfer_time_s(1e9) == pytest.approx(1.0 + 1e-6)
    assert net.transfer_time_s(1e9, messages=10) == pytest.approx(1.0 + 1e-5)


def test_zero_bytes_costs_latency_only():
    net = InterconnectSpec(latency_s=2e-6)
    assert net.transfer_time_s(0) == pytest.approx(2e-6)


def test_transfer_energy():
    net = InterconnectSpec(j_per_byte=1e-9)
    assert net.transfer_energy_j(1e9) == pytest.approx(1.0)


def test_cluster_defaults_use_haswell_node():
    cl = ClusterSpec()
    assert cl.node.cores == 4
    assert cl.node_memory_words() == pytest.approx(4 * 2**30 / 8)


def test_cluster_node_limit():
    cl = ClusterSpec(max_nodes=8)
    assert cl.validate_nodes(8) == 8
    with pytest.raises(ValueError):
        cl.validate_nodes(9)


def test_validation():
    with pytest.raises(Exception):
        InterconnectSpec(bandwidth_bytes_per_s=0)
    with pytest.raises(Exception):
        InterconnectSpec(latency_s=-1)


# ---- topology hop counts (netsim extension) -----------------------------


def test_flat_topology_is_one_hop():
    t = Topology("flat")
    assert t.contention_free
    assert t.hop_count(0, 63, 64) == 1
    assert t.hop_count(5, 5, 64) == 0  # self-distance is free


def test_ring_takes_shortest_way_around():
    t = Topology("ring")
    assert not t.contention_free
    assert t.hop_count(0, 1, 8) == 1
    assert t.hop_count(0, 4, 8) == 4
    assert t.hop_count(0, 7, 8) == 1  # wraparound
    assert t.hop_count(1, 6, 8) == 3


def test_torus2d_manhattan_with_wraparound():
    t = Topology("torus2d")
    # 16 ranks factor to a 4x4 grid.
    assert t.hop_count(0, 1, 16) == 1  # same row
    assert t.hop_count(0, 4, 16) == 1  # same column
    assert t.hop_count(0, 5, 16) == 2  # diagonal
    assert t.hop_count(0, 15, 16) == 2  # both axes wrap
    assert t.hop_count(0, 10, 16) == 4  # grid centre


def test_hypercube_popcount_distance():
    t = Topology("hypercube")
    assert t.hop_count(0, 7, 8) == 3  # 0b000 -> 0b111
    assert t.hop_count(3, 5, 8) == 2  # 0b011 -> 0b101
    assert t.hop_count(6, 6, 8) == 0


def test_hops_vectorized_matches_scalar():
    t = Topology("ring")
    src = np.zeros(8, dtype=np.int64)
    dst = np.arange(8, dtype=np.int64)
    got = t.hops(src, dst, 8)
    assert got.tolist() == [t.hop_count(0, int(d), 8) for d in dst]


def test_topology_validation():
    with pytest.raises(Exception):
        Topology("mesh3d")
    with pytest.raises(Exception):
        Topology("ring").hop_count(0, 8, 8)  # rank out of range
    with pytest.raises(Exception):
        Topology("ring").hop_count(-1, 0, 8)


# ---- per-hop pricing and protocol resolution ----------------------------


def test_message_time_charges_extra_hops():
    net = InterconnectSpec(
        latency_s=1e-6, bandwidth_bytes_per_s=1e9, hop_latency_s=1e-7
    )
    one = net.message_time_s(1000.0, hops=1)
    three = net.message_time_s(1000.0, hops=3)
    assert three == pytest.approx(one + 2e-7)
    # With zero hop latency (the default) distance is free, so the
    # event simulator collapses to the flat alpha-beta model.
    flat = InterconnectSpec(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
    assert flat.message_time_s(1000.0, hops=5) == flat.transfer_time_s(1000.0)


def test_single_hop_eager_message_is_bit_identical_to_transfer():
    net = InterconnectSpec()
    for nbytes in (0.0, 1.0, 8.0 * 4096, 1e9):
        assert net.message_time_s(nbytes) == net.transfer_time_s(nbytes)


def test_rendezvous_pays_latency_twice():
    net = InterconnectSpec(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
    eager = net.message_time_s(1000.0)
    rdv = net.message_time_s(1000.0, rendezvous=True)
    assert rdv == pytest.approx(eager + 1e-6)


def test_zero_byte_message_costs_latency_only():
    net = InterconnectSpec(latency_s=2e-6, hop_latency_s=1e-7)
    assert net.message_time_s(0.0, hops=4) == pytest.approx(2e-6 + 3e-7)


def test_protocol_resolution():
    net = InterconnectSpec(eager_threshold_bytes=1024.0)
    assert not net.is_rendezvous(1024.0)  # at the threshold: eager
    assert net.is_rendezvous(1025.0)  # above: rendezvous
    assert not net.is_rendezvous(1e9, protocol="eager")  # forced
    assert net.is_rendezvous(1.0, protocol="rendezvous")  # forced
    with pytest.raises(Exception):
        net.is_rendezvous(1.0, protocol="tcp")
    # Default threshold is infinite: everything eager, matching the
    # closed-form collectives.
    assert not InterconnectSpec().is_rendezvous(1e18)


def test_single_rank_cluster_is_valid():
    cl = ClusterSpec(max_nodes=1)
    assert cl.validate_nodes(1) == 1
    with pytest.raises(Exception):
        cl.validate_nodes(0)
    with pytest.raises(Exception):
        cl.validate_nodes(-3)
