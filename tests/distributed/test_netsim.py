"""Discrete-event network simulator: shapes, exactness, bounds."""

import math

import pytest

from repro.distributed import (
    BspSimulator,
    ClusterSpec,
    InterconnectSpec,
    NetworkConfig,
    NetworkSweep,
    Topology,
    broadcast,
    broadcast_events,
    build_events,
    pipelined_broadcast,
    simulate,
    simulate_bsp,
    summa_program,
)
from repro.util.errors import ConfigurationError, ValidationError

#: A deliberately gnarly cluster: multi-hop topology, per-hop latency,
#: and a finite eager threshold so "auto" picks rendezvous for big
#: payloads.  The engines must still agree bit-for-bit.
GNARLY = ClusterSpec(
    interconnect=InterconnectSpec(hop_latency_s=2e-7, eager_threshold_bytes=4096.0),
    topology=Topology("torus2d"),
)


# ---- shape validation ---------------------------------------------------


@pytest.mark.parametrize(
    "algorithm,ranks,c",
    [
        ("summa", 6, 1),  # not a perfect square
        ("summa25d", 9, 2),  # c does not divide ranks
        ("summa15d", 9, 2),  # c does not divide ranks
        ("caps-dist", 10, 1),  # not 7^k
    ],
)
def test_invalid_shapes_rejected(algorithm, ranks, c):
    with pytest.raises(ConfigurationError):
        build_events(ClusterSpec(), algorithm, 256, ranks, NetworkConfig(c=c))


def test_summa25d_requires_square_subgrid():
    # 18 / c=2 = 9 = 3^2 but c=2 does not divide p=3.
    with pytest.raises(ConfigurationError):
        build_events(ClusterSpec(), "summa25d", 256, 18, NetworkConfig(c=2))
    # 50 / c=2 = 25 = 5^2, c=2 does not divide 5 either.
    with pytest.raises(ConfigurationError):
        build_events(ClusterSpec(), "summa25d", 256, 50, NetworkConfig(c=2))


def test_unknown_algorithm_and_engine():
    with pytest.raises(ValidationError):
        build_events(ClusterSpec(), "cannon", 256, 4)
    with pytest.raises(ValidationError):
        simulate(ClusterSpec(), "summa", 256, 4, engine="gpu")


def test_network_config_validation():
    with pytest.raises(ValidationError):
        NetworkConfig(protocol="tcp")
    with pytest.raises(Exception):
        NetworkConfig(chunks=0)
    with pytest.raises(ValidationError):
        NetworkConfig(efficiency=1.5)


def test_infeasible_problem_rejected():
    # 3 n^2 words on one rank blows past the node's DRAM.
    with pytest.raises(ConfigurationError):
        build_events(ClusterSpec(), "summa", 131072, 1)


def test_too_many_nodes_rejected():
    cluster = ClusterSpec(max_nodes=8)
    with pytest.raises(ValueError):
        build_events(cluster, "summa", 256, 16)


# ---- engine exactness ---------------------------------------------------


@pytest.mark.parametrize(
    "algorithm,ranks,cfg",
    [
        ("summa", 9, NetworkConfig()),
        ("summa", 16, NetworkConfig(protocol="rendezvous", chunks=2)),
        ("summa25d", 32, NetworkConfig(c=2, chunks=4)),
        ("summa15d", 12, NetworkConfig(c=2)),
        ("caps-dist", 49, NetworkConfig(protocol="eager", efficiency=0.85)),
    ],
)
def test_engines_agree_exactly(algorithm, ranks, cfg):
    ev = simulate(GNARLY, algorithm, 512, ranks, cfg, "events")
    rk = simulate(GNARLY, algorithm, 512, ranks, cfg, "ranks")
    assert ev.n_events == rk.n_events
    assert ev.total_time_s == rk.total_time_s  # exact, no tolerance
    assert ev.compute_s.tobytes() == rk.compute_s.tobytes()
    assert ev.sent_bytes.tobytes() == rk.sent_bytes.tobytes()
    assert ev.recv_bytes.tobytes() == rk.recv_bytes.tobytes()


def test_flow_conservation_and_floor():
    r = simulate(GNARLY, "summa25d", 1024, 32, NetworkConfig(c=2))
    assert math.fsum(r.sent_bytes) == pytest.approx(math.fsum(r.recv_bytes))
    assert r.total_time_s >= r.compute_time_s
    assert r.floor_bytes > 0.0
    assert r.bound_margin >= 1.0
    assert not r.beats_bound()


def test_single_rank_run_has_no_traffic():
    r = simulate(ClusterSpec(), "summa", 512, 1)
    assert r.max_comm_bytes == 0.0
    assert r.bound_margin == math.inf  # floor is zero below two ranks
    assert not r.beats_bound()
    assert r.total_time_s == r.compute_time_s > 0.0


# ---- closed-form differentials -----------------------------------------


def test_binomial_broadcast_matches_closed_form_exactly():
    flat = ClusterSpec()
    nbytes = 8.0 * 4096
    for p in (2, 3, 8, 13):
        prog = broadcast_events(flat, p, nbytes, NetworkConfig(protocol="eager"))
        expect = broadcast(flat.interconnect, nbytes, p).time_s
        for engine in ("events", "ranks"):
            assert prog.simulate(engine).total_s == expect


def test_pipelined_broadcast_matches_closed_form_exactly():
    flat = ClusterSpec()
    nbytes = 8.0 * 4096
    for p, chunks in ((2, 2), (5, 4), (8, 3)):
        cfg = NetworkConfig(protocol="eager", chunks=chunks)
        prog = broadcast_events(flat, p, nbytes, cfg)
        expect = pipelined_broadcast(flat.interconnect, nbytes, p, chunks).time_s
        for engine in ("events", "ranks"):
            assert prog.simulate(engine).total_s == expect


def test_bsp_lowering_matches_bsp_simulator_exactly():
    cluster = ClusterSpec()
    program = summa_program(cluster, 2048, 4, imbalance=0.3)
    closed = BspSimulator(cluster).run(program)
    for engine in ("events", "ranks"):
        lowered = simulate_bsp(cluster, program, engine)
        assert lowered.total_time_s == closed.total_time_s
        assert lowered.comm_time_s == closed.comm_time_s
        assert lowered.compute_time_s == closed.compute_time_s


# ---- sweeps -------------------------------------------------------------


def test_sweep_validates_bounds_and_reports_curves():
    sweep = NetworkSweep(GNARLY, "summa25d", NetworkConfig(c=2))
    result = sweep.run(1024, [8, 32, 128])
    assert [p for p, _ in result.time_curve()] == [8, 32, 128]
    assert all(m >= 1.0 for _, m in result.margin_curve())
    assert result.violations() == []


def test_sweep_rejects_bad_arguments():
    with pytest.raises(ValidationError):
        NetworkSweep(ClusterSpec(), "cannon")
    with pytest.raises(ValidationError):
        NetworkSweep(ClusterSpec(), "summa", engine="gpu")
    with pytest.raises(Exception):
        NetworkSweep(ClusterSpec()).run(1024, [])
