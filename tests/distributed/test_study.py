"""Distributed EP study."""

import pytest

from repro.distributed.dmatmul import CapsDistributed, Summa2D
from repro.distributed.network import ClusterSpec
from repro.distributed.study import DistributedEPStudy
from repro.power.planes import Plane
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def result():
    cl = ClusterSpec()
    study = DistributedEPStudy(
        cl, [Summa2D(cl), CapsDistributed(cl)], node_counts=(1, 4, 16, 64)
    )
    return study.run(8192)


def test_all_runs_present(result):
    assert len(result.runs) == 2 * 4


def test_time_falls_with_nodes(result):
    for alg in result.algorithm_names:
        times = [t for _, t in result.time_curve(alg)]
        assert times == sorted(times, reverse=True)


def test_caps_faster_than_summa(result):
    for nodes in result.node_counts:
        assert (
            result.run_for("caps-dist", nodes).time_s
            < result.run_for("summa", nodes).time_s
        )


def test_interconnect_plane_present(result):
    run = result.run_for("summa", 16)
    assert run.planes_w[Plane.PSYS] > 0
    assert run.planes_w[Plane.PACKAGE] > run.planes_w[Plane.PSYS]


def test_rank_power_sums_independent_planes(result):
    run = result.run_for("summa", 4)
    assert run.rank_power_w == pytest.approx(
        run.planes_w[Plane.PACKAGE]
        + run.planes_w[Plane.DRAM]
        + run.planes_w[Plane.PSYS]
    )
    assert run.cluster_power_w == pytest.approx(4 * run.rank_power_w)


def test_ep_uses_eq4(result):
    """One rank's EP equals its plane-sum watts over its time."""
    run = result.run_for("caps-dist", 1)
    assert run.ep() == pytest.approx(run.rank_power_w / run.time_s)


def test_scaling_curve(result):
    pts = result.scaling_curve("summa")
    assert pts[0].s == 1.0
    ss = [p.s for p in pts]
    assert ss == sorted(ss)


def test_comm_fraction_curve_monotone(result):
    for alg in result.algorithm_names:
        fracs = [f for _, f in result.comm_fraction_curve(alg)]
        assert fracs == sorted(fracs)


def test_missing_run(result):
    with pytest.raises(ValidationError):
        result.run_for("summa", 999)


def test_scaling_requires_single_node_baseline():
    cl = ClusterSpec()
    study = DistributedEPStudy(cl, [Summa2D(cl)], node_counts=(4, 16))
    res = study.run(8192)
    with pytest.raises(ValidationError):
        res.scaling_curve("summa")


class TestWeakScaling:
    @pytest.fixture(scope="class")
    def cluster(self):
        return ClusterSpec()

    def test_work_mode_sizes(self, cluster):
        study = DistributedEPStudy(cluster, [Summa2D(cluster)], node_counts=(1, 8, 64))
        res = study.run_weak(4096, mode="work")
        assert res.is_weak_scaling
        assert res.weak_sizes[1] == 4096
        assert res.weak_sizes[8] == pytest.approx(4096 * 2, abs=2)
        assert res.weak_sizes[64] == pytest.approx(4096 * 4, abs=4)

    def test_memory_mode_sizes(self, cluster):
        study = DistributedEPStudy(cluster, [Summa2D(cluster)], node_counts=(1, 4))
        res = study.run_weak(4096, mode="memory")
        assert res.weak_sizes[4] == 8192

    def test_work_mode_efficiency(self, cluster):
        """Constant classical work per node: SUMMA's compute time stays
        flat and only communication erodes efficiency; CAPS's n^2.81
        flop growth actually leaves it *above* 1.0 — Strassen's
        weak-scaling dividend."""
        study = DistributedEPStudy(
            cluster, [Summa2D(cluster), CapsDistributed(cluster)],
            node_counts=(1, 8, 64),
        )
        res = study.run_weak(2048, mode="work")
        summa = dict(res.efficiency_curve("summa"))
        caps = dict(res.efficiency_curve("caps-dist"))
        assert summa[1] == pytest.approx(1.0)
        assert 0.8 < summa[64] < summa[8] <= 1.01  # comm erosion only
        assert caps[8] > 1.0 and caps[64] > caps[8]  # sub-cubic flops
        assert caps[64] > summa[64]

    def test_strong_scaling_result_is_not_weak(self, cluster):
        study = DistributedEPStudy(cluster, [Summa2D(cluster)], node_counts=(1, 4))
        assert not study.run(4096).is_weak_scaling

    def test_bad_mode_rejected(self, cluster):
        study = DistributedEPStudy(cluster, [Summa2D(cluster)], node_counts=(1,))
        with pytest.raises(ValidationError):
            study.run_weak(1024, mode="hyper")
