"""Collective cost models."""

import math

import pytest

from repro.distributed.comm import (
    CommCost,
    allgather,
    alltoall,
    broadcast,
    point_to_point,
    reduce,
)
from repro.distributed.network import InterconnectSpec

NET = InterconnectSpec(latency_s=1e-6, bandwidth_bytes_per_s=1e9, j_per_byte=1e-9)


def test_point_to_point():
    c = point_to_point(NET, 1e6)
    assert c.time_s == pytest.approx(1e-6 + 1e-3)
    assert c.link_bytes == 1e6


def test_broadcast_log_rounds():
    c = broadcast(NET, 1e6, ranks=8)
    assert c.link_bytes == pytest.approx(3e6)  # log2(8) rounds
    c16 = broadcast(NET, 1e6, ranks=16)
    assert c16.link_bytes == pytest.approx(4e6)


def test_broadcast_single_rank_free():
    assert broadcast(NET, 1e6, 1) == CommCost.zero()


def test_reduce_matches_broadcast_wire_cost():
    assert reduce(NET, 1e6, 8).link_bytes == broadcast(NET, 1e6, 8).link_bytes


def test_allgather_ring():
    c = allgather(NET, 1e6, ranks=4)
    assert c.link_bytes == pytest.approx(3e6)  # P-1 rounds


def test_alltoall_pairwise():
    c = alltoall(NET, 1e5, ranks=5)
    assert c.link_bytes == pytest.approx(4e5)


def test_energy_charges_link_bytes():
    c = point_to_point(NET, 1e6)
    assert c.energy_j(NET) == pytest.approx(1e-3)


def test_comm_cost_addition():
    total = point_to_point(NET, 100) + point_to_point(NET, 200)
    assert total.link_bytes == 300
    assert total.time_s == pytest.approx(2e-6 + 300 / 1e9)


def test_validation():
    with pytest.raises(Exception):
        broadcast(NET, -1, 4)
    with pytest.raises(Exception):
        allgather(NET, 1, 0)
