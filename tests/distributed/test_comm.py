"""Collective cost models."""

import math

import pytest

from repro.distributed.comm import (
    CommCost,
    allgather,
    alltoall,
    broadcast,
    pipelined_broadcast,
    point_to_point,
    reduce,
)
from repro.distributed.network import InterconnectSpec

NET = InterconnectSpec(latency_s=1e-6, bandwidth_bytes_per_s=1e9, j_per_byte=1e-9)


def test_point_to_point():
    c = point_to_point(NET, 1e6)
    assert c.time_s == pytest.approx(1e-6 + 1e-3)
    assert c.link_bytes == 1e6


def test_broadcast_log_rounds():
    c = broadcast(NET, 1e6, ranks=8)
    assert c.link_bytes == pytest.approx(3e6)  # log2(8) rounds
    c16 = broadcast(NET, 1e6, ranks=16)
    assert c16.link_bytes == pytest.approx(4e6)


def test_broadcast_single_rank_free():
    assert broadcast(NET, 1e6, 1) == CommCost.zero()


def test_reduce_matches_broadcast_wire_cost():
    assert reduce(NET, 1e6, 8).link_bytes == broadcast(NET, 1e6, 8).link_bytes


def test_allgather_ring():
    c = allgather(NET, 1e6, ranks=4)
    assert c.link_bytes == pytest.approx(3e6)  # P-1 rounds


def test_alltoall_pairwise():
    c = alltoall(NET, 1e5, ranks=5)
    assert c.link_bytes == pytest.approx(4e5)


def test_energy_charges_link_bytes():
    c = point_to_point(NET, 1e6)
    assert c.energy_j(NET) == pytest.approx(1e-3)


def test_comm_cost_addition():
    total = point_to_point(NET, 100) + point_to_point(NET, 200)
    assert total.link_bytes == 300
    assert total.time_s == pytest.approx(2e-6 + 300 / 1e9)


def test_validation():
    with pytest.raises(Exception):
        broadcast(NET, -1, 4)
    with pytest.raises(Exception):
        allgather(NET, 1, 0)


def test_pipelined_broadcast_chain_formula():
    # 4 ranks, 2 chunks: (P-1) + (chunks-1) = 4 chunk-transfer times.
    c = pipelined_broadcast(NET, 1e6, ranks=4, chunks=2)
    chunk_t = NET.transfer_time_s(5e5)
    assert c.time_s == pytest.approx(4 * chunk_t)
    # Every interior rank forwards the whole payload once.
    assert c.link_bytes == 1e6


def test_pipelined_broadcast_unchunked_is_plain_chain():
    c = pipelined_broadcast(NET, 1e6, ranks=5, chunks=1)
    assert c.time_s == pytest.approx(4 * NET.transfer_time_s(1e6))


def test_pipelining_beats_unpipelined_chain_for_large_payloads():
    slow = pipelined_broadcast(NET, 1e8, ranks=8, chunks=1)
    fast = pipelined_broadcast(NET, 1e8, ranks=8, chunks=16)
    assert fast.time_s < slow.time_s


def test_pipelined_broadcast_edge_cases():
    assert pipelined_broadcast(NET, 1e6, ranks=1, chunks=4) == CommCost.zero()
    zero = pipelined_broadcast(NET, 0.0, ranks=4, chunks=2)
    assert zero.time_s == pytest.approx(4 * NET.latency_s)  # latency only
    assert zero.link_bytes == 0.0
    with pytest.raises(Exception):
        pipelined_broadcast(NET, 1e6, ranks=4, chunks=0)
    with pytest.raises(Exception):
        pipelined_broadcast(NET, -1.0, ranks=4, chunks=2)
