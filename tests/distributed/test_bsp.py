"""BSP superstep simulation."""

import pytest

from repro.distributed.bsp import (
    BspSimulator,
    Superstep,
    caps_program,
    summa_program,
)
from repro.distributed.network import ClusterSpec
from repro.power.planes import Plane
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def cluster():
    return ClusterSpec()


@pytest.fixture(scope="module")
def sim(cluster):
    return BspSimulator(cluster)


class TestSuperstep:
    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            Superstep("s", (1.0, 2.0), (0.0,))

    def test_negative_rejected(self):
        with pytest.raises(Exception):
            Superstep("s", (-1.0,), (0.0,))


class TestSimulator:
    def test_balanced_program_no_idle(self, sim):
        program = [Superstep("s", (0.1, 0.1), (1e6, 1e6))]
        result = sim.run(program)
        assert result.max_idle_fraction == 0.0
        assert result.total_time_s > 0.1  # compute + comm + barrier

    def test_straggler_creates_idle(self, sim):
        program = [Superstep("s", (0.1, 0.2), (0.0, 0.0))]
        result = sim.run(program)
        assert result.idle_time_s[0] == pytest.approx(0.1)
        assert result.idle_time_s[1] == 0.0
        assert result.total_time_s >= 0.2

    def test_h_relation_cost(self, cluster, sim):
        bw = cluster.interconnect.bandwidth_bytes_per_s
        program = [Superstep("s", (0.0, 0.0), (bw, bw / 2))]  # h = bw bytes
        result = sim.run(program)
        assert result.comm_time_s == pytest.approx(1.0, rel=0.01)

    def test_supersteps_accumulate(self, sim):
        one = sim.run([Superstep("a", (0.1,), (0.0,))])
        two = sim.run([Superstep("a", (0.1,), (0.0,)), Superstep("b", (0.1,), (0.0,))])
        assert two.total_time_s == pytest.approx(2 * one.total_time_s, rel=0.05)

    def test_rank_count_consistency_enforced(self, sim):
        with pytest.raises(ValidationError):
            sim.run([Superstep("a", (0.1,), (0.0,)), Superstep("b", (0.1, 0.1), (0.0, 0.0))])

    def test_energy_planes_present(self, sim):
        result = sim.run([Superstep("s", (0.1, 0.1), (1e6, 1e6))])
        for e in result.rank_energy_j:
            assert e[Plane.PACKAGE] > 0
            assert e[Plane.PSYS] > 0

    def test_idle_rank_still_burns_static_power(self, sim):
        """The Eq. 2 max semantics in action: the fast rank waits at the
        barrier burning static+link power."""
        program = [Superstep("s", (0.0, 0.5), (0.0, 0.0))]
        result = sim.run(program)
        fast, slow = result.rank_energy_j
        assert fast[Plane.PACKAGE] > 0  # static power over the whole step
        assert slow[Plane.PACKAGE] > fast[Plane.PACKAGE]


class TestPrograms:
    def test_summa_program_shape(self, cluster):
        program = summa_program(cluster, 8192, 16)
        assert len(program) == 4  # sqrt(16) supersteps
        assert all(s.ranks == 16 for s in program)

    def test_caps_program_shape(self, cluster):
        program = caps_program(cluster, 8192, 49)
        assert program[-1].name == "caps-local"
        assert len(program) == 3  # ceil(log7 49) = 2 BFS + local

    def test_caps_beats_summa_balanced(self, cluster, sim):
        rs = sim.run(summa_program(cluster, 8192, 16))
        rc = sim.run(caps_program(cluster, 8192, 16))
        assert rc.total_time_s < rs.total_time_s

    def test_imbalance_costs_time_and_ep(self, cluster, sim):
        """Stragglers stretch the run and drag the EP ratio — the
        quantitative version of Eq. 2's max-over-units."""
        balanced = sim.run(summa_program(cluster, 8192, 16, imbalance=0.0))
        skewed = sim.run(summa_program(cluster, 8192, 16, imbalance=0.3))
        assert skewed.total_time_s > balanced.total_time_s
        assert skewed.max_idle_fraction > 0.2
        assert skewed.ep() < balanced.ep()

    def test_imbalance_deterministic(self, cluster, sim):
        a = sim.run(summa_program(cluster, 4096, 8, imbalance=0.2))
        b = sim.run(summa_program(cluster, 4096, 8, imbalance=0.2))
        assert a.total_time_s == b.total_time_s

    def test_single_rank_program(self, cluster, sim):
        result = sim.run(caps_program(cluster, 2048, 1))
        assert result.ranks == 1
        assert result.max_idle_fraction == 0.0
