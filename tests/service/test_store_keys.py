"""Property-based tests of the content-addressed cell key.

The key (:func:`repro.core.resultstore.cell_key`) is the store's whole
correctness story: two cells share a key **iff** they would simulate to
the same measurement.  So the key must be *stable* under every
representation accident (dict ordering, JSON whitespace, machine
renames, fingerprint-vs-spec calling convention) and must *diverge*
whenever any physically meaningful input changes — a collision serves
a wrong answer, an instability wastes the store.
"""

import dataclasses
import json
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.resultstore import (
    canonical_json,
    cell_key,
    machine_fingerprint,
    machine_payload,
)
from repro.machine.specs import dual_socket_haswell, haswell_e3_1225
from repro.testing.generators import gen_machine

ALGORITHMS = ("openblas", "atlas", "strassen", "caps")

cell_args = st.fixed_dictionaries(
    {
        "algorithm": st.sampled_from(ALGORITHMS),
        "n": st.integers(min_value=1, max_value=1 << 14),
        "threads": st.integers(min_value=1, max_value=64),
        "seed": st.integers(min_value=0, max_value=2**31),
        "execute": st.booleans(),
        "engine": st.sampled_from(("fast", "reference")),
    }
)


def _key(machine, a):
    return cell_key(
        machine,
        a["algorithm"],
        a["n"],
        a["threads"],
        seed=a["seed"],
        execute=a["execute"],
        engine=a["engine"],
    )


# ---------------------------------------------------------------------------
# stability


@given(cell_args, st.integers())
def test_key_is_deterministic_and_convention_independent(args, mseed):
    """Same physical inputs → same key, whether the caller passes the
    spec or its precomputed fingerprint (the service's hot path)."""
    machine = gen_machine(random.Random(mseed))
    k1 = _key(machine, args)
    k2 = _key(machine, args)
    k3 = _key(machine_fingerprint(machine), args)
    assert k1 == k2 == k3
    assert len(k1) == 64 and set(k1) <= set("0123456789abcdef")


@given(cell_args)
def test_key_ignores_machine_name(args):
    """Renaming a spec is not physically meaningful."""
    machine = haswell_e3_1225()
    renamed = dataclasses.replace(machine, name="some other label")
    assert _key(machine, args) == _key(renamed, args)


@given(st.integers())
def test_fingerprint_stable_under_payload_permutation_and_whitespace(mseed):
    """The fingerprint hashes canonical JSON: key order and formatting
    of the underlying dict must not matter."""
    machine = gen_machine(random.Random(mseed))
    payload = machine_payload(machine)
    shuffled_items = list(payload.items())
    random.Random(mseed ^ 0xC0FFEE).shuffle(shuffled_items)
    assert canonical_json(dict(shuffled_items)) == canonical_json(payload)
    # Whitespace/indent choices never reach the hash either: canonical
    # form is the separators-pinned dump, not whatever a pretty-printer
    # produced.
    pretty = json.dumps(payload, indent=2, sort_keys=True)
    assert canonical_json(json.loads(pretty)) == canonical_json(payload)


def test_canonical_json_rejects_unhashable_objects():
    """Objects without a JSON form must raise, not hash their repr
    (reprs carry memory addresses — keys would be unstable across
    processes)."""
    with pytest.raises(TypeError):
        canonical_json({"machine": object()})


# ---------------------------------------------------------------------------
# divergence


@given(cell_args)
def test_key_diverges_when_any_field_changes(args):
    """Flipping any single physically meaningful field must change the
    key: algorithm, n, threads, seed, execute bound, event kernel."""
    machine = haswell_e3_1225()
    base = _key(machine, args)
    mutations = {
        "algorithm": next(a for a in ALGORITHMS if a != args["algorithm"]),
        "n": args["n"] + 1,
        "threads": args["threads"] + 1,
        "seed": args["seed"] + 1,
        "execute": not args["execute"],
        "engine": "reference" if args["engine"] == "fast" else "fast",
    }
    for field, new_value in mutations.items():
        mutated = {**args, field: new_value}
        assert _key(machine, mutated) != base, field


@given(cell_args)
def test_key_diverges_across_machines(args):
    assert _key(haswell_e3_1225(), args) != _key(dual_socket_haswell(), args)


@given(st.integers(), st.integers())
def test_fingerprint_separates_distinct_machines(seed_a, seed_b):
    """Random machine pairs: equal payloads iff equal fingerprints."""
    a = gen_machine(random.Random(seed_a))
    b = gen_machine(random.Random(seed_b))
    same_payload = machine_payload(a) == machine_payload(b)
    same_fp = machine_fingerprint(a) == machine_fingerprint(b)
    assert same_payload == same_fp


def test_key_tracks_engine_version(monkeypatch):
    """Bumping ENGINE_VERSION must orphan every cached entry."""
    import repro.sim.engine as engine_mod

    machine = haswell_e3_1225()
    args = dict(algorithm="caps", n=256, threads=4, seed=2015,
                execute=False, engine="fast")
    before = _key(machine, args)
    monkeypatch.setattr(engine_mod, "ENGINE_VERSION", engine_mod.ENGINE_VERSION + 1)
    assert _key(machine, args) != before
