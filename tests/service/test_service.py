"""The study service's core contracts: dedup, batching, store traffic,
bit-identity with the serial study, and the StudyResult bridge."""

import asyncio
import dataclasses

import pytest

from repro.core.resultstore import ResultStore
from repro.core.study import EnergyPerformanceStudy, StudyConfig
from repro.observability.metrics import registry
from repro.power.msr import PLANE_MSR, MsrFile
from repro.service import (
    CellSpec,
    ServiceConfig,
    StudyRequest,
    StudyResponse,
    StudyService,
)
from repro.sim.engine import Engine
from repro.util.errors import ConfigurationError, ValidationError


def run(coro):
    return asyncio.run(coro)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cells")


SMALL = dict(algorithms=("openblas", "caps"), sizes=(64,), threads=(1, 2),
             execute_max_n=64)


# ---------------------------------------------------------------------------
# requests and cells


def test_request_cells_are_serial_order_and_execute_bounded():
    req = StudyRequest(("caps", "openblas"), (48, 96), threads=(1, 2),
                       execute_max_n=64)
    cells = req.cells()
    assert [(c.algorithm, c.n, c.threads) for c in cells] == [
        ("caps", 48, 1), ("caps", 48, 2), ("caps", 96, 1), ("caps", 96, 2),
        ("openblas", 48, 1), ("openblas", 48, 2),
        ("openblas", 96, 1), ("openblas", 96, 2),
    ]
    assert [c.execute for c in cells] == [True, True, False, False] * 2
    assert StudyRequest.from_dict(req.to_dict()) == req


def test_request_validation():
    with pytest.raises(ValidationError):
        StudyRequest((), (64,))
    with pytest.raises(ValidationError):
        StudyRequest(("caps",), (0,))
    with pytest.raises(ValidationError):
        CellSpec("caps", 64, 0)


def test_service_config_validation():
    with pytest.raises(ConfigurationError):
        ServiceConfig(workers=-1)
    with pytest.raises(ConfigurationError):
        ServiceConfig(batch_max_cells=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(transport="carrier-pigeon")


# ---------------------------------------------------------------------------
# dedup / store / batching


def test_concurrent_identical_requests_single_flight(machine, store):
    """N identical concurrent requests must compute each unique cell
    exactly once; the rest attach in flight."""
    req = StudyRequest(**SMALL)
    svc_cfg = ServiceConfig()
    snap = registry().snapshot()

    async def drive():
        async with StudyService(machine, store=store, config=svc_cfg) as svc:
            return await asyncio.gather(*(svc.query(req) for _ in range(5)))

    responses = run(drive())
    delta = registry().delta_since(snap)
    unique = len(req.cells())
    assert delta.get("service.cells_computed", 0) == unique
    assert delta.get("service.cells_requested", 0) == unique * 5
    assert delta.get("service.cells_deduped", 0) >= unique * 3
    # Every response carries every cell, whatever its provenance.
    for resp in responses:
        assert len(resp.cells) == unique
        counts = resp.source_counts()
        assert sum(counts.values()) == unique
    # And all five answers are identical objects-by-value.
    first = responses[0]
    for resp in responses[1:]:
        for a, b in zip(first.cells, resp.cells):
            assert a.key == b.key
            assert a.measurement.elapsed_s == b.measurement.elapsed_s


def test_store_hit_across_service_restart(machine, store):
    req = StudyRequest(**SMALL)

    async def cold():
        async with StudyService(machine, store=store) as svc:
            return await svc.query(req)

    async def hot():
        async with StudyService(machine, store=store) as svc:
            return await svc.query(req)

    cold_resp = run(cold())
    assert cold_resp.source_counts()["computed"] == len(req.cells())
    hot_resp = run(hot())
    assert hot_resp.source_counts()["store"] == len(req.cells())
    for a, b in zip(cold_resp.cells, hot_resp.cells):
        assert a.key == b.key
        assert a.measurement.elapsed_s == b.measurement.elapsed_s
        assert a.measurement.energy.package == b.measurement.energy.package


def test_storeless_service_recomputes(machine):
    req = StudyRequest(**SMALL)

    async def drive():
        async with StudyService(machine) as svc:
            first = await svc.query(req)
            second = await svc.query(req)
            return first, second

    first, second = run(drive())
    assert first.source_counts()["computed"] == len(req.cells())
    assert second.source_counts()["computed"] == len(req.cells())


def test_batch_window_coalesces_cells(machine, store):
    """Cells trickling in within the window ride one executor batch."""
    snap = registry().snapshot()

    async def drive():
        cfg = ServiceConfig(batch_window_s=0.05)
        async with StudyService(machine, store=store, config=cfg) as svc:
            specs = [CellSpec("openblas", 64, p, execute=True) for p in (1, 2, 3)]
            return await asyncio.gather(*(svc.query_cell(s) for s in specs))

    results = run(drive())
    delta = registry().delta_since(snap)
    assert delta.get("service.batches", 0) == 1
    assert [r.source for r in results] == ["computed"] * 3


def test_batch_max_cells_flushes_early(machine, store):
    snap = registry().snapshot()

    async def drive():
        cfg = ServiceConfig(batch_max_cells=2, batch_window_s=60.0)
        async with StudyService(machine, store=store, config=cfg) as svc:
            specs = [CellSpec("openblas", 64, p, execute=True) for p in (1, 2, 3, 4)]
            return await asyncio.gather(*(svc.query_cell(s) for s in specs))

    results = run(drive())
    delta = registry().delta_since(snap)
    # 4 cells with a 60 s window only complete because max_cells=2
    # forced two flushes (close() drains any remainder).
    assert delta.get("service.batches", 0) == 2
    assert len(results) == 4


def test_pool_workers_bit_identical_to_inline(machine, tmp_path):
    req = StudyRequest(("openblas", "strassen"), (128,), threads=(1, 2),
                      execute_max_n=0)

    async def drive(workers, store):
        cfg = ServiceConfig(workers=workers)
        async with StudyService(machine, store=store, config=cfg) as svc:
            return await svc.query(req)

    inline = run(drive(0, tmp_path / "a"))
    pooled = run(drive(2, tmp_path / "b"))
    for a, b in zip(inline.cells, pooled.cells):
        assert a.key == b.key
        assert a.measurement.elapsed_s == b.measurement.elapsed_s
        assert a.measurement.energy.package == b.measurement.energy.package
        assert a.measurement.flops == b.measurement.flops


def test_closed_service_rejects_queries(machine):
    async def drive():
        svc = StudyService(machine)
        await svc.close()
        with pytest.raises(ConfigurationError):
            await svc.query_cell(CellSpec("caps", 64, 1))

    run(drive())


# ---------------------------------------------------------------------------
# bit-identity with the serial study + result bridge


def test_served_results_bit_identical_to_serial_study(machine, store):
    cfg = StudyConfig(sizes=(48, 64), threads=(1, 2), execute_max_n=64)
    serial_msr = MsrFile()
    serial = EnergyPerformanceStudy(
        machine, config=cfg, _engine=Engine(machine, msr=serial_msr)
    )._run(None)
    req = StudyRequest(
        algorithms=tuple(serial.algorithm_names),
        sizes=cfg.sizes,
        threads=cfg.threads,
        seed=cfg.seed,
        execute_max_n=cfg.execute_max_n,
    )

    async def drive():
        async with StudyService(machine, store=store) as svc:
            return await svc.query(req)

    response = run(drive())
    for cell in response.cells:
        mm = serial.runs[(cell.spec.algorithm, cell.spec.n, cell.spec.threads)]
        assert mm.elapsed_s == cell.measurement.elapsed_s
        assert mm.energy.package == cell.measurement.energy.package
        assert mm.energy.pp0 == cell.measurement.energy.pp0
        assert mm.energy.dram == cell.measurement.energy.dram
        assert mm.flops == cell.measurement.flops
        assert mm.stats.task_count == cell.measurement.stats.task_count

    # Replaying the response's plane energies reproduces the serial MSR
    # counter stream exactly.
    replayed = MsrFile()
    response.replay_msr(replayed)
    for plane, addr in PLANE_MSR.items():
        assert serial_msr.read(addr) == replayed.read(addr), plane

    # And the StudyResult bridge feeds the paper tables unchanged.
    from repro.core import table3_power

    bridged = response.to_study_result(
        machine, display_names=dict(serial.display_names)
    )
    assert set(bridged.runs) == set(serial.runs)
    assert table3_power(bridged).rows  # renders without error


def test_api_facade_serve_and_request(machine, tmp_path):
    from repro.api import Study

    study = Study(machine, sizes=(64,), threads=(1, 2), execute_max_n=64)
    req = study.request()
    assert req.sizes == (64,)
    assert req.threads == (1, 2)
    assert "openblas" in req.algorithms

    async def drive():
        async with study.serve(store=tmp_path / "cells") as svc:
            return await svc.query(req)

    response = run(drive())
    assert len(response.cells) == len(req.cells())
    direct = study.run().result
    for cell in response.cells:
        mm = direct.runs[(cell.spec.algorithm, cell.spec.n, cell.spec.threads)]
        assert mm.elapsed_s == cell.measurement.elapsed_s


def test_key_excludes_machine_name_but_not_machine(machine, store):
    renamed = dataclasses.replace(machine, name="same metal, new sticker")

    async def key_of(m):
        async with StudyService(m, store=store) as svc:
            return svc.key_for(CellSpec("caps", 64, 1))

    assert run(key_of(machine)) == run(key_of(renamed))
