"""Concurrency and fault injection for the study service.

The service's promise is *graceful degradation, never a wrong answer*:

* a worker that raises — or dies outright, breaking the process pool —
  must degrade to an in-process recompute of exactly the failed cells,
  with ``service.worker_failures`` / ``service.cells_recomputed``
  counting the damage;
* a client that cancels mid-flight must detach without killing the
  shared computation other clients are awaiting
  (``service.cancelled_waits``);
* a corrupted or truncated store entry must read as a counted miss
  (``store.corrupt``), be recomputed bit-correct, and be atomically
  overwritten so the next query is hot again.

Every test checks both the counter trail *and* that the surviving
answers equal an undisturbed inline computation.
"""

import asyncio
import json
import os

import pytest

from repro.core.resultstore import ResultStore
from repro.observability.metrics import registry
from repro.service import CellSpec, ServiceConfig, StudyRequest, StudyService
from repro.service import executor as executor_mod

REQ = StudyRequest(("openblas", "strassen"), (128,), threads=(1, 2),
                   execute_max_n=0)


def run(coro):
    return asyncio.run(coro)


def _reference_cells(machine):
    """The request computed by an undisturbed inline service."""
    async def drive():
        async with StudyService(machine) as svc:
            return {
                (c.spec.algorithm, c.spec.n, c.spec.threads): c.measurement
                for c in (await svc.query(REQ)).cells
            }
    return run(drive())


def _assert_matches_reference(response, reference):
    for cell in response.cells:
        ref = reference[(cell.spec.algorithm, cell.spec.n, cell.spec.threads)]
        assert ref.elapsed_s == cell.measurement.elapsed_s
        assert ref.energy.package == cell.measurement.energy.package
        assert ref.flops == cell.measurement.flops


# ---------------------------------------------------------------------------
# worker failures (pool path)

# Pool targets must be importable top-level functions (pickled by
# reference; the forked workers re-resolve them from this module).


def _raise_in_worker(payload, traced):
    raise RuntimeError("injected worker failure")


def _die_in_worker(payload, traced):
    os._exit(13)  # simulates a segfaulting/OOM-killed worker


@pytest.mark.parametrize(
    "saboteur,label",
    [(_raise_in_worker, "raise"), (_die_in_worker, "die")],
    ids=["worker-raises", "worker-dies"],
)
def test_worker_failure_mid_batch_degrades_to_recompute(
    machine, tmp_path, monkeypatch, saboteur, label
):
    """Both failure shapes — a cell raising in the pool and the worker
    process dying (BrokenProcessPool poisons the whole batch) — must
    end with every cell recomputed in-process, bit-correct."""
    reference = _reference_cells(machine)
    monkeypatch.setattr(executor_mod, "_run_cell_worker", saboteur)
    snap = registry().snapshot()

    async def drive():
        cfg = ServiceConfig(workers=2)
        async with StudyService(machine, store=tmp_path / label, config=cfg) as svc:
            return await svc.query(REQ)

    response = run(drive())
    delta = registry().delta_since(snap)
    unique = len(REQ.cells())
    assert delta.get("service.worker_failures", 0) == unique
    assert delta.get("service.cells_recomputed", 0) == unique
    assert len(response.cells) == unique
    _assert_matches_reference(response, reference)


def test_pool_rebuilds_after_worker_death(machine, tmp_path, monkeypatch):
    """After a batch breaks the pool, the next batch must get a fresh
    pool and succeed on the normal path (no failure counters)."""
    monkeypatch.setattr(executor_mod, "_run_cell_worker", _die_in_worker)

    async def broken(svc):
        return await svc.query(REQ)

    async def drive():
        cfg = ServiceConfig(workers=2)
        async with StudyService(machine, store=None, config=cfg) as svc:
            await broken(svc)
            monkeypatch.undo()
            snap = registry().snapshot()
            response = await svc.query(REQ)
            return response, registry().delta_since(snap)

    response, delta = run(drive())
    assert delta.get("service.worker_failures", 0) == 0
    assert delta.get("service.cells_recomputed", 0) == 0
    assert len(response.cells) == len(REQ.cells())


# ---------------------------------------------------------------------------
# client cancellation


def test_cancelled_client_does_not_kill_shared_computation(machine, tmp_path):
    """Client A enqueues a cell and is cancelled mid-flight; client B,
    attached to the same in-flight future, must still get the right
    answer, and the store must still be populated."""
    reference = _reference_cells(machine)
    spec = CellSpec("openblas", 128, 1)
    store_root = tmp_path / "cells"
    snap = registry().snapshot()

    async def drive():
        async with StudyService(machine, store=store_root) as svc:
            a = asyncio.create_task(svc.query_cell(spec))
            await asyncio.sleep(0)  # let A enqueue the cell
            b = asyncio.create_task(svc.query_cell(spec))
            await asyncio.sleep(0)  # let B attach in flight
            a.cancel()
            result_b = await b
            with pytest.raises(asyncio.CancelledError):
                await a
            return result_b

    result = run(drive())
    delta = registry().delta_since(snap)
    assert result.source == "inflight"
    ref = reference[(spec.algorithm, spec.n, spec.threads)]
    assert result.measurement.elapsed_s == ref.elapsed_s
    assert result.measurement.energy.package == ref.energy.package
    assert delta.get("service.cancelled_waits", 0) == 1
    assert delta.get("service.cells_computed", 0) == 1
    # The computation outlived its cancelled originator: the store has it.
    assert ResultStore(store_root).get(result.key) is not None


def test_all_clients_cancelled_computation_still_lands_in_store(machine, tmp_path):
    """Even with *every* waiter gone, the shared computation finishes
    and persists (the shield detaches waiters, not work)."""
    spec = CellSpec("strassen", 128, 2)
    store_root = tmp_path / "cells"

    async def drive():
        async with StudyService(machine, store=store_root) as svc:
            a = asyncio.create_task(svc.query_cell(spec))
            await asyncio.sleep(0)
            a.cancel()
            with pytest.raises(asyncio.CancelledError):
                await a
            key = svc.key_for(spec)
        # close() drained the batch; the entry must be durable.
        return key

    key = run(drive())
    assert ResultStore(store_root).get(key) is not None


# ---------------------------------------------------------------------------
# store corruption


def _truncate(path):
    path.write_text(path.read_text()[: len(path.read_text()) // 2])


def _flip_payload_bit(path):
    entry = json.loads(path.read_text())
    payload = entry["payload"]
    entry["payload"] = payload[:10] + ("A" if payload[10] != "A" else "B") + payload[11:]
    path.write_text(json.dumps(entry))


def _wrong_key(path):
    entry = json.loads(path.read_text())
    entry["key"] = "0" * 64
    path.write_text(json.dumps(entry))


def _not_json(path):
    path.write_text("this is not an entry at all")


@pytest.mark.parametrize(
    "corrupt",
    [_truncate, _flip_payload_bit, _wrong_key, _not_json],
    ids=["truncated", "bit-flipped", "key-mismatch", "not-json"],
)
def test_corrupt_store_entry_is_recomputed_never_served(
    machine, tmp_path, corrupt
):
    """Whatever rots on disk, the service recomputes — counted, correct,
    and overwritten so the following query is hot again."""
    reference = _reference_cells(machine)
    store_root = tmp_path / "cells"
    spec = CellSpec("openblas", 128, 2)

    async def query_once():
        # A fresh service per pass: no LRU warmth can mask disk rot.
        async with StudyService(machine, store=store_root) as svc:
            return await svc.query_cell(spec), svc.key_for(spec)

    first, key = run(query_once())
    assert first.source == "computed"

    corrupt(ResultStore(store_root)._path(key))
    snap = registry().snapshot()
    second, _ = run(query_once())
    delta = registry().delta_since(snap)
    assert second.source == "computed"  # the rot was never served
    assert delta.get("store.corrupt", 0) == 1
    ref = reference[(spec.algorithm, spec.n, spec.threads)]
    assert second.measurement.elapsed_s == ref.elapsed_s
    assert second.measurement.energy.package == ref.energy.package

    third, _ = run(query_once())
    assert third.source == "store"  # recompute overwrote the rot
    assert third.measurement.elapsed_s == ref.elapsed_s


def test_missing_store_directory_is_a_plain_miss(machine, tmp_path):
    """Deleting the whole store out from under a running service is just
    misses, not errors."""
    store_root = tmp_path / "cells"
    spec = CellSpec("openblas", 128, 1)

    async def drive():
        async with StudyService(machine, store=store_root) as svc:
            first = await svc.query_cell(spec)
            # Nuke the shard behind the service's back; bypass the LRU
            # with a direct disk-backed read.
            path = ResultStore(store_root)._path(first.key)
            path.unlink()
            assert ResultStore(store_root).get(first.key) is None
            return first

    run(drive())
