"""The unix-socket JSON-lines front door: round-trips, protocol errors,
multi-client sharing, shutdown, and the CLI entry points."""

import asyncio
import json
import socket as socket_mod
import threading
import time

import pytest

from repro.service import CellSpec, ServiceClient, StudyRequest, serve
from repro.util.errors import ServiceError


@pytest.fixture()
def server(machine, tmp_path):
    """A served socket in a background thread; yields the socket path."""
    sock = tmp_path / "svc.sock"
    store = tmp_path / "cells"
    done = threading.Thread(
        target=lambda: asyncio.run(serve(sock, store=store, machine=machine)),
        daemon=True,
    )
    done.start()
    deadline = time.monotonic() + 10
    while not sock.exists():
        if time.monotonic() > deadline:  # pragma: no cover - hang guard
            raise RuntimeError("server socket never appeared")
        time.sleep(0.01)
    yield str(sock)
    if sock.exists():
        try:
            with ServiceClient(sock) as c:
                c.shutdown()
        except (ServiceError, OSError):
            pass
    done.join(timeout=10)


def test_ping_query_stats_roundtrip(server):
    with ServiceClient(server) as client:
        assert client.ping()
        req = StudyRequest(("caps",), (64,), threads=(1, 2), execute_max_n=64)
        reply = client.query(req)
        assert reply["sources"] == {"store": 0, "computed": 2, "inflight": 0}
        assert len(reply["cells"]) == 2
        for cell in reply["cells"]:
            assert cell["algorithm"] == "caps"
            assert cell["elapsed_s"] > 0
            assert cell["energy_package_j"] > 0
        again = client.query(req)
        assert again["sources"] == {"store": 2, "computed": 0, "inflight": 0}
        # JSON floats round-trip bit-exactly (repr-based encoding).
        for a, b in zip(reply["cells"], again["cells"]):
            assert a["elapsed_s"] == b["elapsed_s"]
            assert a["energy_package_j"] == b["energy_package_j"]
        stats = client.stats()
        assert stats["service.requests"] >= 2
        assert stats["store.hits"] >= 2


def test_single_cell_op(server):
    with ServiceClient(server) as client:
        spec = CellSpec("openblas", 64, 1, execute=True)
        first = client.query_cell(spec)
        assert first["source"] == "computed"
        second = client.query_cell(spec)
        assert second["source"] == "store"
        assert first["elapsed_s"] == second["elapsed_s"]


def test_two_clients_share_one_store(server):
    req = StudyRequest(("openblas",), (64,), threads=(1,), execute_max_n=64)
    with ServiceClient(server) as a:
        a.query(req)
    with ServiceClient(server) as b:
        reply = b.query(req)
    assert reply["sources"]["store"] == 1


def test_protocol_errors_are_replies_not_disconnects(server):
    with ServiceClient(server) as client:
        with pytest.raises(ServiceError, match="unknown op"):
            client.request({"op": "frobnicate"})
        # The connection survives an error reply.
        assert client.ping()
        with pytest.raises(ServiceError):
            client.request({"op": "query", "request": {"sizes": []}})
        assert client.ping()


def test_connect_failure_is_a_typed_error(tmp_path):
    with pytest.raises(ServiceError, match="cannot connect"):
        ServiceClient(tmp_path / "no-such.sock")


def test_malformed_json_line(server):
    raw = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
    raw.settimeout(30)
    raw.connect(server)
    try:
        f = raw.makefile("rwb")
        f.write(b"this is not json\n")
        f.flush()
        reply = json.loads(f.readline())
        assert reply["ok"] is False
        f.write(b'"a json string, not an object"\n')
        f.flush()
        reply = json.loads(f.readline())
        assert reply["ok"] is False
        assert "object" in reply["error"]
    finally:
        raw.close()


def test_shutdown_removes_socket(machine, tmp_path):
    sock = tmp_path / "svc.sock"
    t = threading.Thread(
        target=lambda: asyncio.run(serve(sock, machine=machine)), daemon=True
    )
    t.start()
    deadline = time.monotonic() + 10
    while not sock.exists():
        time.sleep(0.01)
        assert time.monotonic() < deadline
    with ServiceClient(sock) as client:
        client.shutdown()
    t.join(timeout=10)
    assert not t.is_alive()
    assert not sock.exists()


# ---------------------------------------------------------------------------
# CLI entry points


def test_cli_serve_and_query(machine, tmp_path, capsys):
    from repro.cli import main

    sock = tmp_path / "svc.sock"
    store = tmp_path / "cells"
    t = threading.Thread(
        target=main,
        args=(["serve", "--socket", str(sock), "--store", str(store)],),
        daemon=True,
    )
    t.start()
    deadline = time.monotonic() + 10
    while not sock.exists():
        time.sleep(0.01)
        assert time.monotonic() < deadline

    args = ["query", "--socket", str(sock), "--algorithms", "caps",
            "--sizes", "64", "--threads", "1", "2", "--execute-max-n", "64"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "cells: 2 (store 0, computed 2, deduped 0)" in out

    assert main(args) == 0
    out = capsys.readouterr().out
    assert "cells: 2 (store 2, computed 0, deduped 0)" in out

    assert main(["query", "--socket", str(sock), "--stats"]) == 0
    out = capsys.readouterr().out
    assert "store.hits" in out

    assert main(["query", "--socket", str(sock), "--shutdown"]) == 0
    t.join(timeout=10)
    assert not t.is_alive()


def test_cli_query_errors_are_rc2_one_liners(machine, tmp_path, capsys):
    """CLI error paths must exit 2 with a one-line `error: ...` on
    stderr — a raw traceback is a bug (ServiceError is a ReproError)."""
    from repro.cli import main

    # No socket at all.
    rc = main(["query", "--socket", str(tmp_path / "nope.sock"), "--stats"])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error: cannot connect")

    # Server-side rejection travels back as a typed error reply.
    sock = tmp_path / "svc.sock"
    t = threading.Thread(
        target=main, args=(["serve", "--socket", str(sock)],), daemon=True
    )
    t.start()
    deadline = time.monotonic() + 10
    while not sock.exists():
        time.sleep(0.01)
        assert time.monotonic() < deadline
    rc = main(["query", "--socket", str(sock), "--algorithms", "nosuchalg",
               "--sizes", "64"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown algorithm" in err
    assert "Traceback" not in err
    assert main(["query", "--socket", str(sock), "--shutdown"]) == 0
    t.join(timeout=10)
