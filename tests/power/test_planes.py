"""Power planes and Eq. 3 aggregation."""

import pytest
from hypothesis import given, strategies as st

from repro.power.planes import PAPER_PLANES, Plane, PlaneSet, aggregate_planes
from repro.util.errors import MeasurementError, ValidationError


def test_paper_measures_package_and_pp0():
    assert PAPER_PLANES == (Plane.PACKAGE, Plane.PP0)


def test_plane_set_nonempty_required():
    with pytest.raises(ValidationError):
        PlaneSet(())


def test_plane_set_no_duplicates():
    with pytest.raises(ValidationError):
        PlaneSet((Plane.PACKAGE, Plane.PACKAGE))


def test_require():
    ps = PlaneSet((Plane.PACKAGE,))
    assert ps.require(Plane.PACKAGE) is Plane.PACKAGE
    with pytest.raises(MeasurementError):
        ps.require(Plane.DRAM)


def test_independent_excludes_pp0_under_package():
    ps = PlaneSet((Plane.PACKAGE, Plane.PP0, Plane.DRAM))
    assert Plane.PP0 not in ps.independent
    assert Plane.PACKAGE in ps.independent
    assert Plane.DRAM in ps.independent


def test_independent_without_package():
    ps = PlaneSet((Plane.PP0, Plane.DRAM))
    assert ps.independent == (Plane.PP0, Plane.DRAM)


def test_aggregate_simple_sum():
    # Eq. 3 over independent planes.
    assert aggregate_planes({Plane.PP0: 3.0, Plane.DRAM: 2.0}) == 5.0


def test_aggregate_skips_contained_pp0():
    # PACKAGE already contains PP0 (RAPL semantics).
    total = aggregate_planes({Plane.PACKAGE: 10.0, Plane.PP0: 6.0, Plane.DRAM: 2.0})
    assert total == 12.0


def test_aggregate_accepts_string_keys():
    assert aggregate_planes({"PACKAGE": 10.0, "DRAM": 1.0}) == 11.0


def test_aggregate_rejects_empty_and_negative():
    with pytest.raises(ValidationError):
        aggregate_planes({})
    with pytest.raises(ValidationError):
        aggregate_planes({Plane.PACKAGE: -1.0})


@given(st.lists(st.sampled_from(list(Plane)), min_size=1, max_size=5, unique=True),
       st.floats(min_value=0, max_value=1e3))
def test_aggregate_permutation_invariant(planes, base):
    readings = {p: base + i for i, p in enumerate(planes)}
    forward = aggregate_planes(readings)
    backward = aggregate_planes(dict(reversed(list(readings.items()))))
    assert forward == pytest.approx(backward, rel=1e-12)
