"""PAPI-like component API."""

import pytest

from repro.power.msr import MsrFile
from repro.power.papi import EventSetState, PapiLibrary, RAPL_EVENTS
from repro.power.planes import Plane
from repro.util.errors import MeasurementError


@pytest.fixture()
def lib():
    return PapiLibrary(MsrFile())


def test_only_rapl_component(lib):
    assert lib.num_components() == 1
    comp = lib.component("rapl")
    assert "rapl:::PACKAGE_ENERGY:PACKAGE0" in comp.events
    with pytest.raises(MeasurementError):
        lib.component("cuda")


def test_describe_event(lib):
    comp = lib.component("rapl")
    assert "PACKAGE" in comp.describe_event("rapl:::PACKAGE_ENERGY:PACKAGE0")
    with pytest.raises(MeasurementError):
        comp.describe_event("nope")


def test_eventset_lifecycle(lib):
    es = lib.create_eventset()
    assert es.state is EventSetState.STOPPED
    es.add_event("rapl:::PACKAGE_ENERGY:PACKAGE0")
    es.start()
    assert es.state is EventSetState.RUNNING
    values = es.stop()
    assert values == [pytest.approx(0.0, abs=1)]
    assert es.state is EventSetState.STOPPED


def test_paper_configuration_package_and_pp0(lib):
    """The paper's driver reads PACKAGE and PP0 (§V-C)."""
    es = lib.create_eventset()
    es.add_event("rapl:::PACKAGE_ENERGY:PACKAGE0")
    es.add_event("rapl:::PP0_ENERGY:PACKAGE0")
    es.start()
    lib.msr.deposit_energy(Plane.PACKAGE, 2.0)
    lib.msr.deposit_energy(Plane.PP0, 1.5)
    pkg_nj, pp0_nj = es.stop()
    assert pkg_nj == pytest.approx(2.0e9, rel=1e-3)
    assert pp0_nj == pytest.approx(1.5e9, rel=1e-3)


def test_values_are_nanojoules(lib):
    es = lib.create_eventset()
    es.add_event("rapl:::DRAM_ENERGY:PACKAGE0")
    es.start()
    lib.msr.deposit_energy(Plane.DRAM, 1.0)
    (value,) = es.read()
    assert value == pytest.approx(1e9, rel=1e-3)


def test_read_requires_running(lib):
    es = lib.create_eventset()
    es.add_event("rapl:::PACKAGE_ENERGY:PACKAGE0")
    with pytest.raises(MeasurementError):
        es.read()


def test_start_empty_rejected(lib):
    with pytest.raises(MeasurementError):
        lib.create_eventset().start()


def test_add_while_running_rejected(lib):
    es = lib.create_eventset()
    es.add_event("rapl:::PACKAGE_ENERGY:PACKAGE0")
    es.start()
    with pytest.raises(MeasurementError):
        es.add_event("rapl:::PP0_ENERGY:PACKAGE0")


def test_duplicate_event_rejected(lib):
    es = lib.create_eventset()
    es.add_event("rapl:::PACKAGE_ENERGY:PACKAGE0")
    with pytest.raises(MeasurementError):
        es.add_event("rapl:::PACKAGE_ENERGY:PACKAGE0")


def test_unknown_event_rejected(lib):
    with pytest.raises(MeasurementError):
        lib.create_eventset().add_event("rapl:::BOGUS")


def test_double_start_rejected(lib):
    es = lib.create_eventset()
    es.add_event("rapl:::PACKAGE_ENERGY:PACKAGE0")
    es.start()
    with pytest.raises(MeasurementError):
        es.start()


def test_event_plane_mapping_complete():
    assert set(RAPL_EVENTS.values()) == {
        Plane.PACKAGE,
        Plane.PP0,
        Plane.PP1,
        Plane.DRAM,
    }
