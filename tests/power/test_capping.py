"""RAPL power-limit enforcement."""

from dataclasses import replace

import pytest

from repro.machine.frequency import FrequencyDomain, PState
from repro.machine.specs import haswell_e3_1225
from repro.power.capping import PowerLimit, enforce_power_limit
from repro.runtime.cost import TaskCost
from repro.runtime.task import TaskGraph
from repro.util.units import GHZ


def dvfs_machine():
    domain = FrequencyDomain(
        (PState(1.6 * GHZ, 0.8), PState(2.4 * GHZ, 0.9), PState(3.2 * GHZ, 1.0)),
        active_index=2,
        power_saving_enabled=True,
    )
    return replace(haswell_e3_1225(), frequency=domain)


def busy_graph(cores=4):
    g = TaskGraph("busy")
    for i in range(cores * 4):
        g.add(f"t{i}", TaskCost(flops=5e9, efficiency=0.9))
    return g


class TestPowerLimit:
    def test_permits(self):
        limit = PowerLimit(30.0)
        assert limit.permits(29.9)
        assert not limit.permits(30.1)

    def test_disabled_permits_everything(self):
        assert PowerLimit(1.0, enabled=False).permits(1000.0)

    def test_validation(self):
        with pytest.raises(Exception):
            PowerLimit(0.0)


class TestEnforcement:
    def test_generous_limit_no_throttle(self):
        m = dvfs_machine()
        run = enforce_power_limit(m, busy_graph(), 4, PowerLimit(500.0))
        assert run.feasible
        assert run.slowdown == pytest.approx(1.0)
        assert run.pstate_index == 2

    def test_tight_limit_throttles(self):
        m = dvfs_machine()
        uncapped = enforce_power_limit(m, busy_graph(), 4, PowerLimit(500.0))
        cap = uncapped.measurement.avg_power_w() - 5.0
        run = enforce_power_limit(m, busy_graph(), 4, PowerLimit(cap))
        assert run.feasible
        assert run.pstate_index < 2
        assert run.slowdown > 1.0
        assert run.measurement.avg_power_w() <= cap + 1e-6
        assert run.power_saving_w > 0

    def test_infeasible_limit_reported(self):
        m = dvfs_machine()
        run = enforce_power_limit(m, busy_graph(), 4, PowerLimit(2.0))
        assert not run.feasible
        assert run.pstate_index == 0  # slowest state was tried

    def test_single_pstate_machine(self, machine):
        """The paper's BIOS-locked machine has nothing to throttle."""
        run = enforce_power_limit(machine, busy_graph(), 4, PowerLimit(5.0))
        assert not run.feasible
        assert run.slowdown == pytest.approx(1.0)

    def test_throttle_monotone_in_limit(self):
        """Tighter limits never pick a faster P-state."""
        m = dvfs_machine()
        g = busy_graph()
        states = [
            enforce_power_limit(m, g, 4, PowerLimit(w)).pstate_index
            for w in (500.0, 40.0, 25.0)
        ]
        assert states == sorted(states, reverse=True)
