"""Wrap-aware, fault-hardened RAPL reader."""

import pytest

from repro.power.msr import ENERGY_STATUS_MASK, MSR_PKG_ENERGY_STATUS, MsrFile
from repro.power.planes import Plane
from repro.power.rapl import DEFAULT_GLITCH_THRESHOLD_UNITS, RaplDomain, RaplReader
from repro.testing.faults import FaultyMsr
from repro.util.errors import (
    CounterCorruptionError,
    CounterGlitchError,
    MeasurementError,
    MsrReadError,
)


def test_domain_metadata():
    dom = RaplDomain.for_plane(Plane.PACKAGE)
    assert dom.msr_address == 0x611
    assert "package" in dom.description


def test_psys_is_not_a_rapl_domain():
    with pytest.raises(MeasurementError):
        RaplDomain.for_plane(Plane.PSYS)


def test_reader_starts_at_zero_even_with_prior_energy():
    msr = MsrFile()
    msr.deposit_energy(Plane.PACKAGE, 100.0)
    reader = RaplReader(msr)
    assert reader.energy_joules(Plane.PACKAGE) == pytest.approx(0.0, abs=1e-9)


def test_reader_sees_deposits_after_creation():
    msr = MsrFile()
    reader = RaplReader(msr)
    msr.deposit_energy(Plane.PACKAGE, 5.0)
    assert reader.energy_joules(Plane.PACKAGE) == pytest.approx(5.0, abs=1e-3)


def test_reader_survives_counter_wrap():
    msr = MsrFile()
    reader = RaplReader(msr)
    # Many deposits summing past the ~262 kJ wrap point, polled between.
    step = msr.wrap_joules * 0.4
    for _ in range(5):
        msr.deposit_energy(Plane.PACKAGE, step)
        reader.poll()
    assert reader.energy_joules(Plane.PACKAGE) == pytest.approx(5 * step, rel=1e-6)


def test_untracked_plane_raises():
    reader = RaplReader(MsrFile(), planes=(Plane.PACKAGE,))
    with pytest.raises(MeasurementError):
        reader.energy_joules(Plane.DRAM)


def test_snapshot_covers_all_tracked():
    msr = MsrFile()
    reader = RaplReader(msr)
    msr.deposit_energy(Plane.PP0, 2.0)
    snap = reader.snapshot()
    assert set(snap) == {Plane.PACKAGE, Plane.PP0, Plane.DRAM}
    assert snap[Plane.PP0] == pytest.approx(2.0, abs=1e-3)


def test_reset_zeroes_accumulation():
    msr = MsrFile()
    reader = RaplReader(msr)
    msr.deposit_energy(Plane.PACKAGE, 3.0)
    reader.reset()
    assert reader.energy_joules(Plane.PACKAGE) == pytest.approx(0.0, abs=1e-9)
    msr.deposit_energy(Plane.PACKAGE, 1.0)
    assert reader.energy_joules(Plane.PACKAGE) == pytest.approx(1.0, abs=1e-3)


# ---------------------------------------------------------------------------
# 32-bit boundary behaviour


def test_wrap_at_exact_32bit_boundary():
    """A deposit that lands the counter exactly on 2^32 units wraps to
    zero; the modular difference still recovers every joule."""
    msr = MsrFile()
    # Plausibility checks off: this test feeds nearly a full counter
    # range in one poll on purpose, to exercise pure modular
    # differencing at the exact 2^32 boundary.
    reader = RaplReader(msr, glitch_threshold_units=None)
    whole_range = (ENERGY_STATUS_MASK + 1) * msr.joules_per_unit
    # Stop one unit short of the boundary, poll, then step across it.
    msr.deposit_energy(Plane.PACKAGE, whole_range - msr.joules_per_unit)
    reader.poll()
    assert msr.read(MSR_PKG_ENERGY_STATUS) == ENERGY_STATUS_MASK
    msr.deposit_energy(Plane.PACKAGE, msr.joules_per_unit)
    assert msr.read(MSR_PKG_ENERGY_STATUS) == 0  # wrapped to exactly zero
    assert reader.energy_joules(Plane.PACKAGE) == pytest.approx(
        whole_range, rel=1e-9
    )


def test_many_wraps_accumulate_exactly():
    """Repeated crossings of the energy-status boundary, polled each
    time with plausible (sub-half-range) deltas: the accumulated total
    is exact to quantization, with the glitch check still armed."""
    msr = MsrFile()
    reader = RaplReader(msr)
    step = 0.45 * msr.wrap_joules
    for _ in range(10):
        msr.deposit_energy(Plane.PACKAGE, step)
        reader.poll()
    total = reader.energy_joules(Plane.PACKAGE)
    assert total == pytest.approx(10 * step, abs=10 * msr.joules_per_unit)


def test_unpolled_wrap_is_aliased_not_negative():
    """Missing a full wrap between polls loses exactly one counter
    range (the documented aliasing failure) — the reading must still be
    non-negative and below the true value, never garbage."""
    msr = MsrFile()
    reader = RaplReader(msr, glitch_threshold_units=None)
    msr.deposit_energy(Plane.PACKAGE, msr.wrap_joules * 1.25)  # > one wrap
    got = reader.energy_joules(Plane.PACKAGE)
    assert got == pytest.approx(0.25 * msr.wrap_joules, rel=1e-6)
    assert got >= 0.0


# ---------------------------------------------------------------------------
# fault modes (driven through the injection layer)


def test_glitch_threshold_default_is_half_range():
    assert DEFAULT_GLITCH_THRESHOLD_UNITS == (ENERGY_STATUS_MASK + 1) // 2


def test_nonmonotonic_sample_raises_and_preserves_accumulator():
    faulty = FaultyMsr()
    reader = RaplReader(faulty, planes=(Plane.PACKAGE,))
    faulty.deposit_energy(Plane.PACKAGE, 10.0)
    reader.poll()
    before = reader.energy_joules(Plane.PACKAGE)
    faulty.arm("nonmonotonic", backstep=4096)
    with pytest.raises(CounterGlitchError):
        reader.poll()
    faulty.disarm()
    # Accumulator untouched by the rejected sample.
    assert reader.energy_joules(Plane.PACKAGE) == before
    # And recovery after the glitch is exact.
    faulty.deposit_energy(Plane.PACKAGE, 4.0)
    assert reader.energy_joules(Plane.PACKAGE) == pytest.approx(14.0, abs=1e-3)


def test_dropped_reads_are_skipped_and_recovered():
    faulty = FaultyMsr()
    reader = RaplReader(faulty, planes=(Plane.PACKAGE,))
    faulty.deposit_energy(Plane.PACKAGE, 6.0)
    faulty.arm("dropped")
    reader.poll()
    reader.poll()
    assert reader.dropped_reads[Plane.PACKAGE] == 2
    faulty.disarm()
    faulty.deposit_energy(Plane.PACKAGE, 3.0)
    # Nothing was lost across the outage.
    assert reader.energy_joules(Plane.PACKAGE) == pytest.approx(9.0, abs=1e-3)


def test_nan_counter_raises_corruption():
    faulty = FaultyMsr()
    reader = RaplReader(faulty, planes=(Plane.PACKAGE,))
    faulty.arm("nan")
    with pytest.raises(CounterCorruptionError):
        reader.poll()


def test_negative_counter_raises_corruption():
    faulty = FaultyMsr()
    reader = RaplReader(faulty, planes=(Plane.PACKAGE,))
    faulty.arm("negative")
    with pytest.raises(CounterCorruptionError):
        reader.poll()


def test_corrupt_value_at_construction_raises():
    """The initial snapshot goes through the same plausibility checks."""
    faulty = FaultyMsr()
    faulty.arm("nan")
    with pytest.raises(CounterCorruptionError):
        RaplReader(faulty, planes=(Plane.PACKAGE,))


def test_msr_read_error_at_construction_propagates():
    """A reader cannot baseline a domain it has never successfully
    read; construction-time drop-outs propagate as MsrReadError."""
    faulty = FaultyMsr()
    faulty.arm("dropped")
    with pytest.raises(MsrReadError):
        RaplReader(faulty, planes=(Plane.PACKAGE,))


def test_glitch_check_can_be_disabled():
    """glitch_threshold_units=None restores pure modular differencing
    (the backwards step aliases to a huge forward delta)."""
    faulty = FaultyMsr()
    reader = RaplReader(
        faulty, planes=(Plane.PACKAGE,), glitch_threshold_units=None
    )
    faulty.deposit_energy(Plane.PACKAGE, 1.0)
    reader.poll()
    faulty.arm("nonmonotonic", backstep=100)
    reader.poll()  # no raise: the alias is folded in
    assert reader.energy_joules(Plane.PACKAGE) > faulty.wrap_joules / 2
