"""Wrap-aware RAPL reader."""

import pytest

from repro.power.msr import MsrFile
from repro.power.planes import Plane
from repro.power.rapl import RaplDomain, RaplReader
from repro.util.errors import MeasurementError


def test_domain_metadata():
    dom = RaplDomain.for_plane(Plane.PACKAGE)
    assert dom.msr_address == 0x611
    assert "package" in dom.description


def test_psys_is_not_a_rapl_domain():
    with pytest.raises(MeasurementError):
        RaplDomain.for_plane(Plane.PSYS)


def test_reader_starts_at_zero_even_with_prior_energy():
    msr = MsrFile()
    msr.deposit_energy(Plane.PACKAGE, 100.0)
    reader = RaplReader(msr)
    assert reader.energy_joules(Plane.PACKAGE) == pytest.approx(0.0, abs=1e-9)


def test_reader_sees_deposits_after_creation():
    msr = MsrFile()
    reader = RaplReader(msr)
    msr.deposit_energy(Plane.PACKAGE, 5.0)
    assert reader.energy_joules(Plane.PACKAGE) == pytest.approx(5.0, abs=1e-3)


def test_reader_survives_counter_wrap():
    msr = MsrFile()
    reader = RaplReader(msr)
    # Many deposits summing past the ~262 kJ wrap point, polled between.
    step = msr.wrap_joules * 0.4
    for _ in range(5):
        msr.deposit_energy(Plane.PACKAGE, step)
        reader.poll()
    assert reader.energy_joules(Plane.PACKAGE) == pytest.approx(5 * step, rel=1e-6)


def test_untracked_plane_raises():
    reader = RaplReader(MsrFile(), planes=(Plane.PACKAGE,))
    with pytest.raises(MeasurementError):
        reader.energy_joules(Plane.DRAM)


def test_snapshot_covers_all_tracked():
    msr = MsrFile()
    reader = RaplReader(msr)
    msr.deposit_energy(Plane.PP0, 2.0)
    snap = reader.snapshot()
    assert set(snap) == {Plane.PACKAGE, Plane.PP0, Plane.DRAM}
    assert snap[Plane.PP0] == pytest.approx(2.0, abs=1e-3)


def test_reset_zeroes_accumulation():
    msr = MsrFile()
    reader = RaplReader(msr)
    msr.deposit_energy(Plane.PACKAGE, 3.0)
    reader.reset()
    assert reader.energy_joules(Plane.PACKAGE) == pytest.approx(0.0, abs=1e-9)
    msr.deposit_energy(Plane.PACKAGE, 1.0)
    assert reader.energy_joules(Plane.PACKAGE) == pytest.approx(1.0, abs=1e-3)
