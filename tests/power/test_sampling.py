"""Power traces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.power.planes import Plane
from repro.power.sampling import PowerSegment, PowerTrace
from repro.util.errors import MeasurementError, ValidationError

PKG = Plane.PACKAGE


def seg(t0, t1, w):
    return PowerSegment(t0, t1, {PKG: w})


def trace():
    return PowerTrace([seg(0, 1, 10.0), seg(1, 3, 20.0), seg(3, 4, 30.0)])


def test_segment_validation():
    with pytest.raises(ValidationError):
        PowerSegment(1.0, 0.5, {PKG: 1.0})
    with pytest.raises(ValidationError):
        PowerSegment(0, 1, {PKG: -1.0})


def test_energy_integrates_watts():
    t = trace()
    assert t.energy(PKG) == pytest.approx(10 + 40 + 30)


def test_average_power_is_energy_over_duration():
    t = trace()
    assert t.average_power(PKG) == pytest.approx(80 / 4)


def test_peak_power():
    assert trace().peak_power(PKG) == 30.0


def test_power_at():
    t = trace()
    assert t.power_at(0.5, PKG) == 10.0
    assert t.power_at(2.0, PKG) == 20.0
    assert t.power_at(3.5, PKG) == 30.0
    assert t.power_at(5.0, PKG) == 0.0  # past end
    assert t.power_at(-1.0, PKG) == 0.0  # before start


def test_overlapping_segments_rejected():
    with pytest.raises(ValidationError):
        PowerTrace([seg(0, 2, 1.0), seg(1, 3, 1.0)])


def test_segments_sorted_automatically():
    t = PowerTrace([seg(2, 3, 5.0), seg(0, 2, 1.0)])
    assert t.t_start == 0 and t.t_end == 3


def test_empty_trace_errors():
    t = PowerTrace([])
    with pytest.raises(MeasurementError):
        _ = t.t_start
    with pytest.raises(MeasurementError):
        t.peak_power(PKG)
    assert t.duration == 0.0


def test_resample_period():
    samples = trace().resample(0.5, PKG)
    assert len(samples) == 8
    assert samples[0] == (0.0, 10.0)
    assert samples[-1][1] == 30.0
    with pytest.raises(ValidationError):
        trace().resample(0, PKG)


def test_missing_plane_reads_zero():
    assert trace().energy(Plane.DRAM) == 0.0


def test_concat():
    a = PowerTrace([seg(0, 1, 1.0)])
    b = PowerTrace([seg(1, 2, 3.0)])
    c = PowerTrace.concat([a, b])
    assert c.energy(PKG) == pytest.approx(4.0)
    assert len(c) == 2


def test_planes_listing():
    t = PowerTrace([PowerSegment(0, 1, {PKG: 1.0, Plane.DRAM: 0.5})])
    assert t.planes() == {PKG, Plane.DRAM}


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20))
def test_trace_energy_equals_sum_of_segment_energies(watts):
    segs = [seg(i, i + 1, w) for i, w in enumerate(watts)]
    t = PowerTrace(segs)
    assert t.energy(PKG) == pytest.approx(sum(watts))
    assert t.peak_power(PKG) == max(watts)
