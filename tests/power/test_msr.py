"""Emulated RAPL MSRs: quantization and 32-bit wraparound."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.power.msr import (
    ENERGY_STATUS_MASK,
    MSR_PKG_ENERGY_STATUS,
    MSR_RAPL_POWER_UNIT,
    MsrFile,
)
from repro.power.planes import Plane
from repro.util.errors import MeasurementError, ValidationError


def test_power_unit_register_encodes_esu():
    msr = MsrFile(energy_unit_exponent=14)
    raw = msr.read(MSR_RAPL_POWER_UNIT)
    assert (raw >> 8) & 0x1F == 14


def test_joules_per_unit():
    assert MsrFile(energy_unit_exponent=14).joules_per_unit == pytest.approx(2**-14)


def test_deposit_and_read_back():
    msr = MsrFile()
    msr.deposit_energy(Plane.PACKAGE, 1.0)
    joules = msr.counter_joules(Plane.PACKAGE)
    assert joules == pytest.approx(1.0, abs=msr.joules_per_unit)


def test_sub_unit_residual_not_lost():
    msr = MsrFile()
    tiny = msr.joules_per_unit / 10
    for _ in range(100):
        msr.deposit_energy(Plane.PP0, tiny)
    assert msr.counter_joules(Plane.PP0) == pytest.approx(
        100 * tiny, abs=msr.joules_per_unit
    )


def test_counter_wraps_at_32_bits():
    msr = MsrFile()
    just_below = (ENERGY_STATUS_MASK) * msr.joules_per_unit
    msr.deposit_energy(Plane.DRAM, just_below)
    msr.deposit_energy(Plane.DRAM, 3 * msr.joules_per_unit)
    raw = msr.read(0x619)
    assert raw == 2  # wrapped past 0xFFFFFFFF


def test_unknown_msr_raises():
    with pytest.raises(MeasurementError):
        MsrFile().read(0xDEAD)


def test_negative_deposit_rejected():
    with pytest.raises(ValidationError):
        MsrFile().deposit_energy(Plane.PACKAGE, -1.0)


def test_unsupported_plane_rejected():
    with pytest.raises(MeasurementError):
        MsrFile().deposit_energy(Plane.PSYS, 1.0)


def test_invalid_exponent():
    with pytest.raises(ValidationError):
        MsrFile(energy_unit_exponent=0)


def test_wrap_joules():
    msr = MsrFile(energy_unit_exponent=14)
    assert msr.wrap_joules == pytest.approx(2**32 * 2**-14)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=10.0), min_size=1, max_size=30))
def test_deposits_accumulate_regardless_of_split(chunks):
    """Depositing in many chunks equals one big deposit, within one
    quantum (residual carry makes the error sub-unit, not per-chunk)."""
    total = sum(chunks)
    a = MsrFile()
    for c in chunks:
        a.deposit_energy(Plane.PACKAGE, c)
    b = MsrFile()
    b.deposit_energy(Plane.PACKAGE, total)
    assert a.counter_joules(Plane.PACKAGE) == pytest.approx(
        b.counter_joules(Plane.PACKAGE), abs=a.joules_per_unit * 1.01
    )
