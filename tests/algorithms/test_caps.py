"""CAPS lowering: BFS/DFS hybrid, packing, numerics."""

import numpy as np
import pytest

from repro.algorithms.caps import CapsStrassen
from repro.algorithms.strassen import StrassenWinograd
from repro.runtime.scheduler import Scheduler
from repro.util.errors import ConfigurationError


def test_numerics_bfs_only(machine, engine):
    # cutoff_depth large enough that everything is BFS.
    alg = CapsStrassen(machine, cutoff_depth=4, leaf_cutoff=32, dfs_grain=32)
    build = alg.build(128, threads=4)
    engine.run(build.graph, threads=4)
    assert build.verify().ok


def test_numerics_with_dfs_region(machine, engine):
    # cutoff_depth=1: depth 0 BFS, everything below DFS.
    alg = CapsStrassen(machine, cutoff_depth=1, leaf_cutoff=16, dfs_grain=32)
    build = alg.build(128, threads=3)
    engine.run(build.graph, threads=3)
    assert build.verify().ok
    assert np.allclose(build.c, build.a @ build.b, atol=1e-9)


def test_numerics_without_packing(machine, engine):
    alg = CapsStrassen(machine, cutoff_depth=2, leaf_cutoff=32, pack=False)
    build = alg.build(128, threads=2)
    engine.run(build.graph, threads=2)
    assert build.verify().ok


def test_numerics_padding(machine, engine):
    alg = CapsStrassen(machine, cutoff_depth=2, leaf_cutoff=16)
    build = alg.build(96, threads=2)  # pads to 128
    engine.run(build.graph, threads=2)
    assert np.allclose(build.c, build.a @ build.b, atol=1e-9)


def test_flop_count_matches_strassen(machine):
    caps = CapsStrassen(machine)
    strassen = StrassenWinograd(machine)
    for n in (64, 512, 2048):
        assert caps.flop_count(n) == pytest.approx(strassen.flop_count(n))


def test_algorithm_2_dispatch(machine):
    """Paper Algorithm 2: BFS above the cutoff depth, DFS below."""
    alg = CapsStrassen(machine, cutoff_depth=1, leaf_cutoff=64, dfs_grain=64)
    build = alg.build(256, threads=4, execute=False)
    counts = build.graph.counts_by_prefix()
    bfs = [k for k in counts if k.startswith("bfs-")]
    dfs = [k for k in counts if k.startswith("dfs-")]
    assert bfs and dfs


def test_all_bfs_when_shallow(machine):
    alg = CapsStrassen(machine, cutoff_depth=4, leaf_cutoff=64)
    build = alg.build(256, threads=4, execute=False)
    counts = build.graph.counts_by_prefix()
    assert not any(k.startswith("dfs-") for k in counts)


def test_packing_tasks_emitted(machine):
    with_pack = CapsStrassen(machine, cutoff_depth=2, leaf_cutoff=64)
    without = CapsStrassen(machine, cutoff_depth=2, leaf_cutoff=64, pack=False)
    cp = with_pack.build(128, threads=2, execute=False).graph.counts_by_prefix()
    cn = without.build(128, threads=2, execute=False).graph.counts_by_prefix()
    assert cp.get("bfs-pack1", 0) == 1
    assert cp.get("bfs-unpack", 0) == 1
    assert "bfs-pack1" not in cn


def test_packing_adds_traffic_not_flops(machine):
    with_pack = CapsStrassen(machine, cutoff_depth=2, leaf_cutoff=64)
    without = CapsStrassen(machine, cutoff_depth=2, leaf_cutoff=64, pack=False)
    gp = with_pack.build(128, threads=2, execute=False).graph.total_cost()
    gn = without.build(128, threads=2, execute=False).graph.total_cost()
    assert gp.bytes_l1 > gn.bytes_l1
    # Pack tasks carry a token 1-flop cost each; arithmetic is unchanged.
    assert gp.flops == pytest.approx(gn.flops, abs=10)


def test_dfs_children_are_sequential(machine):
    """DFS mode runs the seven sub-problems in sequence even with idle
    cores (the paper's 'each stage... in sequence')."""
    # cutoff_depth=0: the whole tree is DFS.  The root node at 128 has
    # seven 64-wide sub-problems, each a work-shared grain stage.
    alg = CapsStrassen(machine, cutoff_depth=0, leaf_cutoff=32, dfs_grain=64)
    build = alg.build(128, threads=4, execute=False)
    sched = Scheduler(machine, threads=4, execute=False).run(build.graph)
    grains = [r for r in sched.records if r.name.startswith("dfs-grain/64[")]
    assert len(grains) == 7 * 4  # 7 stages x 4 work-sharing chunks
    # The seven stages run strictly one after another: their chunk
    # start times collapse to exactly seven distinct instants.
    starts = sorted({round(r.start, 12) for r in grains})
    assert len(starts) == 7
    ends_by_start = {}
    for r in grains:
        key = round(r.start, 12)
        ends_by_start[key] = max(ends_by_start.get(key, 0.0), r.end)
    ordered = sorted(ends_by_start)
    for earlier, later in zip(ordered, ordered[1:]):
        assert later >= ends_by_start[earlier] - 1e-12


def test_memory_footprint_exceeds_strassen(machine):
    """'The BFS approach requires additional buffer memory.'"""
    caps = CapsStrassen(machine)
    strassen = StrassenWinograd(machine)
    assert caps.memory_footprint_bytes(4096) > strassen.memory_footprint_bytes(4096)


def test_memory_gate(machine):
    with pytest.raises(ConfigurationError):
        CapsStrassen(machine).check_memory(8192)


def test_default_parameters_match_paper(machine):
    alg = CapsStrassen(machine)
    assert alg.cutoff_depth == 4  # "a cutoff depth of four"
    assert alg.leaf_cutoff == 64  # "dimension is less than or equal to 64"


def test_registry_names(machine):
    assert CapsStrassen(machine).name == "caps"
    assert CapsStrassen(machine).display_name == "CAPS"
