"""Blocked DGEMM lowering (the OpenBLAS fixture)."""

import numpy as np
import pytest

from repro.algorithms.blocked import BlockedGemm
from repro.runtime.scheduler import Scheduler
from repro.util.errors import ConfigurationError


@pytest.fixture()
def alg(machine):
    return BlockedGemm(machine)


def test_flop_count(alg):
    assert alg.flop_count(512) == 2 * 512**3


def test_numerics_exact(machine, alg, engine):
    build = alg.build(96, threads=4)
    engine.run(build.graph, threads=4)
    assert np.allclose(build.c, build.a @ build.b)
    assert build.verify().ok


def test_graph_is_embarrassingly_parallel(alg):
    build = alg.build(256, threads=4, execute=False)
    assert all(not t.deps for t in build.graph)


def test_tile_tasks_cover_output(alg):
    build = alg.build(200, threads=2, execute=False)
    total_flops = sum(t.cost.flops for t in build.graph)
    assert total_flops == pytest.approx(alg.flop_count(200))


def test_cost_only_build_has_no_arrays(alg):
    build = alg.build(128, threads=1, execute=False)
    assert build.cost_only
    assert build.a is None and build.c is None
    with pytest.raises(Exception):
        build.verify()


def test_llc_resident_dram_traffic_is_cold_only(machine, alg):
    # 512^2: 6.3 MB working set fits the 8 MiB LLC (paper's near-linear case).
    assert alg.dram_traffic_bytes(512) == pytest.approx(3 * 512**2 * 8)


def test_spilling_dram_traffic_scales_with_n_cubed(machine, alg):
    t1024 = alg.dram_traffic_bytes(1024)
    t2048 = alg.dram_traffic_bytes(2048)
    assert t1024 > 3 * 1024**2 * 8  # more than cold load
    # n^3 streaming term dominates as n grows (8x per doubling, minus
    # the shrinking cold-load share).
    assert 5.0 < t2048 / t1024 <= 8.0


def test_near_linear_scaling(machine, alg, engine):
    """The paper: blocked DGEMM gives near-linear scaling on SMPs."""
    times = {}
    for p in (1, 2, 4):
        build = alg.build(512, threads=p, execute=False)
        times[p] = engine.run(build.graph, threads=p, execute=False).elapsed_s
    assert times[1] / times[2] == pytest.approx(2.0, rel=0.15)
    assert times[1] / times[4] == pytest.approx(4.0, rel=0.15)


def test_high_efficiency_throughput(machine, alg, engine):
    build = alg.build(512, threads=1, execute=False)
    meas = engine.run(build.graph, threads=1, execute=False)
    # Should sustain close to 0.92 of the 51.2 Gflop/s core peak.
    assert meas.gflops > 0.8 * 51.2


def test_memory_gate(machine):
    alg = BlockedGemm(machine)
    with pytest.raises(ConfigurationError):
        alg.build(20000, threads=1, execute=False)  # 3*20000^2*8 = 9.6 GB > 4 GB


def test_seed_controls_operands(machine, alg):
    b1 = alg.build(64, threads=1, seed=1)
    b2 = alg.build(64, threads=1, seed=1)
    b3 = alg.build(64, threads=1, seed=2)
    assert np.array_equal(b1.a, b2.a)
    assert not np.array_equal(b1.a, b3.a)


def test_registry_name(alg):
    assert alg.name == "openblas"
    assert alg.display_name == "OpenBLAS"
