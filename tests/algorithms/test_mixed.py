"""Block LU: the mixed sequential-parallel workload and Eq. 2."""

import numpy as np
import pytest

from repro.algorithms.mixed import BlockLU, mixed_ep
from repro.sim import Engine
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def lu(machine):
    return BlockLU(machine, block=64)


class TestNumerics:
    def test_factorization_correct(self, machine, lu):
        build = lu.build(256, threads=4)
        Engine(machine).run(build.graph, threads=4)
        assert build.verify() < 1e-10

    def test_single_block_case(self, machine, lu):
        build = lu.build(64, threads=1)
        Engine(machine).run(build.graph, threads=1)
        assert build.verify() < 1e-12

    def test_lu_reconstruction_shape(self, machine, lu):
        build = lu.build(128, threads=2)
        Engine(machine).run(build.graph, threads=2)
        lower = np.tril(build.lu, -1) + np.eye(128)
        upper = np.triu(build.lu)
        assert np.allclose(lower @ upper, build.original, atol=1e-6 * 128)

    def test_block_divisibility_enforced(self, lu):
        with pytest.raises(ValidationError):
            lu.build(100, threads=1, execute=False)

    def test_cost_only_build(self, lu):
        build = lu.build(256, threads=2, execute=False)
        assert build.cost_only
        with pytest.raises(ValidationError):
            build.verify()


class TestStructure:
    def test_panels_serialize(self, machine, lu):
        """Each step's panel depends (transitively) on the previous
        step's join — panels can never overlap."""
        from repro.runtime.scheduler import Scheduler

        build = lu.build(256, threads=4, execute=False)
        sched = Scheduler(machine, threads=4, execute=False).run(build.graph)
        panels = sorted(
            (r for r in sched.records if r.name.startswith("seq-panel")),
            key=lambda r: r.start,
        )
        assert len(panels) == 4
        for a, b in zip(panels, panels[1:]):
            assert b.start >= a.end - 1e-12

    def test_task_kinds_present(self, lu):
        build = lu.build(256, threads=2, execute=False)
        counts = build.graph.counts_by_prefix()
        assert counts["seq-panel"] == 4
        assert any(k.startswith("par-update") for k in counts)
        assert any(k.startswith("solves") for k in counts)

    def test_update_dominates_flops(self, lu):
        """The parallel trailing updates carry most of the arithmetic —
        LU's Amdahl structure."""
        build = lu.build(512, threads=4, execute=False)
        total = build.graph.total_cost().flops
        seq = sum(
            t.cost.flops for t in build.graph if t.name.startswith("seq-")
        )
        assert seq / total < 0.1


class TestEq2:
    def test_mixed_ep_positive(self, lu):
        report = mixed_ep(lu, 512, threads=4)
        assert report.ep_t > 0
        assert 0 < report.sequential_fraction < 1

    def test_serial_fraction_grows_with_threads(self, lu):
        """Amdahl: the parallel part shrinks with threads, the serial
        part doesn't — its share of the runtime grows."""
        f1 = mixed_ep(lu, 512, threads=1).sequential_fraction
        f4 = mixed_ep(lu, 512, threads=4).sequential_fraction
        assert f4 > f1

    def test_eq2_matches_manual_computation(self, lu):
        report = mixed_ep(lu, 256, threads=2)
        seq, par = report.sequential, report.parallel
        expected = (seq.avg_power_w() + par.avg_power_w()) / (
            seq.elapsed_s + par.elapsed_s
        )
        assert report.ep_t == pytest.approx(expected)

    def test_energy_convention(self, lu):
        report = mixed_ep(lu, 256, threads=2, convention="energy")
        seq, par = report.sequential, report.parallel
        expected = (seq.energy.package + par.energy.package) / (
            seq.elapsed_s + par.elapsed_s
        )
        assert report.ep_t == pytest.approx(expected)

    def test_mixed_scaling_below_pure_parallel(self, machine, lu):
        """The sequential panels damp EP_t scaling versus a pure
        parallel workload's (Amdahl on the EP ratio)."""
        from repro.algorithms import BlockedGemm
        from repro.core.ep import EPMeasurement

        eng = Engine(machine)
        lu_s = mixed_ep(lu, 512, 4).ep_t / mixed_ep(lu, 512, 1).ep_t

        gemm = BlockedGemm(machine)
        meas = {}
        for p in (1, 4):
            b = gemm.build(512, threads=p, execute=False)
            meas[p] = EPMeasurement(eng.run(b.graph, p, execute=False)).ep
        gemm_s = meas[4] / meas[1]
        assert lu_s < gemm_s

    def test_summary(self, lu):
        text = mixed_ep(lu, 256, threads=2).summary()
        assert "EP_t" in text and "serial fraction" in text
