"""Strassen-Winograd lowering (the BOTS fixture)."""

import numpy as np
import pytest

from repro.algorithms.strassen import StrassenWinograd
from repro.util.errors import ConfigurationError


@pytest.fixture()
def alg(machine):
    return StrassenWinograd(machine, cutoff=32, grain=32)


def test_flop_count_below_classical(machine):
    alg = StrassenWinograd(machine)
    # Strassen's reduced operation count (the paper's 'reduction in
    # overall operation count').
    assert alg.flop_count(4096) < 2 * 4096**3
    assert alg.flop_count(64) == 2 * 64**3  # at cutoff: plain


def test_flop_count_recursion(machine):
    alg = StrassenWinograd(machine, cutoff=64)
    n = 128
    expected = 7 * 2 * 64**3 + 15 * 64**2
    assert alg.flop_count(n) == expected


def test_classic_variant_has_18_adds(machine):
    classic = StrassenWinograd(machine, classic=True)
    assert classic.pre_adds + classic.post_adds == 18
    winograd = StrassenWinograd(machine)
    assert winograd.pre_adds + winograd.post_adds == 15


def test_numerics_winograd(machine, alg, engine):
    build = alg.build(128, threads=4)
    engine.run(build.graph, threads=4)
    assert build.verify().ok
    assert np.allclose(build.c, build.a @ build.b, atol=1e-9)


def test_numerics_classic(machine, engine):
    alg = StrassenWinograd(machine, cutoff=16, grain=16, classic=True)
    build = alg.build(64, threads=2)
    engine.run(build.graph, threads=2)
    assert build.verify().ok


def test_numerics_with_grain(machine, engine):
    alg = StrassenWinograd(machine, cutoff=16, grain=64)
    build = alg.build(256, threads=4)
    engine.run(build.graph, threads=4)
    assert build.verify().ok


def test_padding_non_power_of_two(machine, engine):
    alg = StrassenWinograd(machine, cutoff=16, grain=16)
    build = alg.build(48, threads=2)  # pads to 64
    engine.run(build.graph, threads=2)
    assert build.c.shape == (48, 48)
    assert np.allclose(build.c, build.a @ build.b, atol=1e-9)


def test_task_structure_seven_children(machine):
    alg = StrassenWinograd(machine, cutoff=64, grain=64)
    build = alg.build(128, threads=4, execute=False)
    counts = build.graph.counts_by_prefix()
    # One node: 1 pre, 7 leaf multiplies (at grain==cutoff==64), 1 post.
    assert counts["pre"] == 1
    assert counts["post"] == 1
    assert counts.get("grain", 0) + counts.get("leaf", 0) == 7


def test_leaf_count_is_power_of_seven(machine):
    alg = StrassenWinograd(machine, cutoff=64, grain=64)
    build = alg.build(512, threads=4, execute=False)
    counts = build.graph.counts_by_prefix()
    # 512 -> 256 -> 128 -> 64: 3 levels => 7^3 leaves/grains.
    leaves = counts.get("grain", 0) + counts.get("leaf", 0)
    assert leaves == 343


def test_pre_before_children_before_post(machine):
    from repro.runtime.scheduler import Scheduler

    alg = StrassenWinograd(machine, cutoff=64, grain=64)
    build = alg.build(128, threads=4, execute=False)
    sched = Scheduler(machine, threads=4, execute=False).run(build.graph)

    def records(prefix):
        return [r for r in sched.records if r.name.startswith(prefix)]

    pre_end = max(r.end for r in records("pre"))
    post_start = min(r.start for r in records("post"))
    mul_windows = [(r.start, r.end) for r in records("grain") + records("leaf")]
    assert mul_windows
    assert all(s >= pre_end - 1e-12 for s, _ in mul_windows)
    assert all(e <= post_start + 1e-12 for _, e in mul_windows)


def test_memory_gate_at_8192(machine):
    """The paper could not run beyond 4096^2 for the Strassen-derived
    approaches; our footprint model reproduces the gate."""
    alg = StrassenWinograd(machine)
    alg.check_memory(4096)  # fits
    with pytest.raises(ConfigurationError):
        alg.check_memory(8192)


def test_strassen_needs_more_memory_than_blocked(machine):
    from repro.algorithms.blocked import BlockedGemm

    strassen = StrassenWinograd(machine)
    blocked = BlockedGemm(machine)
    assert strassen.memory_footprint_bytes(4096) > blocked.memory_footprint_bytes(4096)


def test_subtree_cost_consistent_with_graph(machine):
    """The aggregate grain cost equals the sum of the expanded graph's
    task costs (same recursion, different granularity)."""
    fine = StrassenWinograd(machine, cutoff=32, grain=32)
    coarse = StrassenWinograd(machine, cutoff=32, grain=128)
    g_fine = fine.build(128, threads=1, execute=False).graph
    g_coarse = coarse.build(128, threads=1, execute=False).graph
    assert g_fine.total_cost().flops == pytest.approx(g_coarse.total_cost().flops)
    assert g_fine.total_cost().bytes_dram == pytest.approx(
        g_coarse.total_cost().bytes_dram
    )


def test_variant_name(machine):
    assert StrassenWinograd(machine).variant == "winograd"
    assert StrassenWinograd(machine, classic=True).variant == "strassen"


class TestPeelStrategy:
    def test_peel_numerics(self, machine, engine):
        alg = StrassenWinograd(machine, cutoff=32, grain=48, odd_strategy="peel")
        build = alg.build(100, threads=4)
        engine.run(build.graph, threads=4)
        import numpy as np

        assert np.allclose(build.c, build.a @ build.b, atol=1e-9)

    def test_peel_avoids_padding_memory(self, machine):
        """Peeling at n just above a power of two: padding would nearly
        quadruple the footprint, peeling doesn't."""
        pad = StrassenWinograd(machine, odd_strategy="pad")
        peel = StrassenWinograd(machine, odd_strategy="peel")
        n = 2049
        assert peel.memory_footprint_bytes(n) < 0.5 * pad.memory_footprint_bytes(n)

    def test_peel_flop_overhead_quadratic(self, machine):
        """Peeling adds O(n^2) work over the even core, far below the
        padded variant's jump to the next power of two."""
        peel = StrassenWinograd(machine, cutoff=64, odd_strategy="peel")
        pad = StrassenWinograd(machine, cutoff=64, odd_strategy="pad")
        n = 1025
        assert peel.flop_count(n) < 0.5 * pad.flop_count(n)
        assert peel.flop_count(n) > peel.flop_count(1024)

    def test_peel_task_emitted(self, machine):
        alg = StrassenWinograd(machine, cutoff=32, grain=32, odd_strategy="peel")
        build = alg.build(130, threads=2, execute=False)
        counts = build.graph.counts_by_prefix()
        assert counts.get("peel", 0) >= 1

    def test_classic_peel_rejected(self, machine):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            StrassenWinograd(machine, classic=True, odd_strategy="peel")

    def test_bad_strategy_rejected(self, machine):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            StrassenWinograd(machine, odd_strategy="reflect")

    def test_power_of_two_sizes_unchanged(self, machine, engine):
        """On the paper's sizes the two strategies are identical."""
        pad = StrassenWinograd(machine, odd_strategy="pad")
        peel = StrassenWinograd(machine, odd_strategy="peel")
        assert pad.flop_count(512) == peel.flop_count(512)
        g_pad = pad.build(256, 2, execute=False).graph
        g_peel = peel.build(256, 2, execute=False).graph
        assert len(g_pad) == len(g_peel)
