"""Kernel cost builders."""

import pytest

from repro.algorithms.kernels import addition_cost, blocked_tile_cost, leaf_gemm_cost
from repro.util.errors import ValidationError


class TestBlockedTile:
    def test_flops(self, machine):
        c = blocked_tile_cost(128, 128, 512, machine, 0.92, dram_bytes=1e6)
        assert c.flops == 2 * 128 * 128 * 512
        assert c.efficiency == 0.92
        assert c.bytes_dram == 1e6

    def test_traffic_positive_and_ordered(self, machine):
        c = blocked_tile_cost(128, 128, 512, machine, 0.92, 0)
        assert c.bytes_l1 > c.bytes_l2 > c.bytes_l3 > 0

    def test_validation(self, machine):
        with pytest.raises(ValidationError):
            blocked_tile_cost(0, 1, 1, machine, 0.9, 0)
        with pytest.raises(ValidationError):
            blocked_tile_cost(1, 1, 1, machine, 0.0, 0)


class TestLeafGemm:
    def test_flops_and_efficiency(self, machine):
        c = leaf_gemm_cost(64, machine, 0.38, 0.5)
        assert c.flops == 2 * 64**3
        assert c.efficiency == 0.38

    def test_naive_reuse_traffic(self, machine):
        c = leaf_gemm_cost(64, machine, 0.38, 0.0, reuse=16)
        volume = 2 * 64**3 * 8
        assert c.bytes_l3 == pytest.approx(volume / 16)
        assert c.bytes_l2 == pytest.approx(volume / 8)
        assert c.bytes_l1 == pytest.approx(volume / 4)
        assert c.bytes_dram == pytest.approx(volume / 16)

    def test_locality_cuts_dram_only(self, machine):
        lo = leaf_gemm_cost(64, machine, 0.38, 0.0)
        hi = leaf_gemm_cost(64, machine, 0.38, 0.8)
        assert hi.bytes_dram == pytest.approx(0.2 * lo.bytes_dram)
        assert hi.bytes_l3 == lo.bytes_l3

    def test_naive_leaf_moves_more_than_blocked_model(self, machine):
        """The BOTS unrolled leaf's traffic dwarfs a packed kernel's —
        the mechanism that starves Strassen of scaling."""
        from repro.algorithms.traffic import gemm_traffic

        naive = leaf_gemm_cost(64, machine, 0.38, 0.0)
        packed = gemm_traffic(64, 64, 64, machine.caches)
        assert naive.bytes_l3 > 10 * packed.l3


class TestAddition:
    def test_flops_one_per_element(self, machine):
        c = addition_cost(128, 8, machine, 0.5)
        assert c.flops == 8 * 128 * 128

    def test_streaming_three_operands(self, machine):
        c = addition_cost(128, 1, machine, 0.0)
        assert c.bytes_l1 == 3 * 128 * 128 * 8
        assert c.bytes_dram == c.bytes_l1  # no locality

    def test_memory_bound_intensity(self, machine):
        c = addition_cost(256, 1, machine, 0.0)
        assert c.arithmetic_intensity() < 0.1

    def test_ops_scale_linearly(self, machine):
        one = addition_cost(64, 1, machine, 0.5)
        many = addition_cost(64, 15, machine, 0.5)
        assert many.flops == 15 * one.flops
        assert many.bytes_l1 == pytest.approx(15 * one.bytes_l1)

    def test_validation(self, machine):
        with pytest.raises(ValidationError):
            addition_cost(0, 1, machine, 0.5)
        with pytest.raises(ValidationError):
            addition_cost(4, 0, machine, 0.5)
