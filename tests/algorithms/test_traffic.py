"""Analytical traffic models, cross-checked against the trace-driven
cache simulator (DESIGN §5)."""

import pytest

from repro.algorithms.traffic import block_factor, gemm_traffic, streaming_traffic
from repro.machine.cache import CacheHierarchySim, CacheHierarchySpec, CacheLevelSpec
from repro.util.errors import ValidationError


class TestBlockFactor:
    def test_three_tiles_fit(self):
        b = block_factor(32 * 1024)  # Haswell L1
        assert 3 * b * b * 8 <= 32 * 1024
        assert 3 * (b + 1) * (b + 1) * 8 > 32 * 1024

    def test_llc_block(self):
        b = block_factor(8 * 2**20)
        assert b == 591

    def test_minimum_one(self):
        assert block_factor(1) == 1


class TestGemmTraffic:
    def test_traffic_decreases_with_level(self, machine):
        t = gemm_traffic(256, 256, 256, machine.caches)
        assert t.l1 > t.l2 > t.l3

    def test_volume_scaling(self, machine):
        small = gemm_traffic(128, 128, 128, machine.caches)
        big = gemm_traffic(256, 256, 256, machine.caches)
        assert big.l1 == pytest.approx(8 * small.l1)

    def test_dram_reuse_block_override(self, machine):
        t = gemm_traffic(256, 256, 256, machine.caches, dram_reuse_block=1000)
        assert t.dram == pytest.approx(2 * 256**3 * 8 / 1000)


class TestStreamingTraffic:
    def test_zero_bytes(self, machine):
        t = streaming_traffic(0, machine)
        assert t.l1 == t.dram == 0

    def test_no_locality_all_dram(self, machine):
        t = streaming_traffic(1e6, machine, locality=0.0)
        assert t.dram == 1e6
        assert t.l1 == t.l2 == t.l3 == 1e6

    def test_full_locality_when_fits(self, machine):
        # 1 MB fits the 8 MiB LLC: locality 1.0 -> no DRAM traffic.
        t = streaming_traffic(1e6, machine, locality=1.0)
        assert t.dram == 0.0

    def test_locality_discounted_when_spills(self, machine):
        llc = machine.caches.last_level_capacity
        t = streaming_traffic(4 * llc, machine, locality=1.0)
        # fit = 1/4 -> dram = nbytes * (1 - 0.25)
        assert t.dram == pytest.approx(3 * llc)

    def test_locality_bounds(self, machine):
        with pytest.raises(ValidationError):
            streaming_traffic(1e6, machine, locality=1.5)


class TestCrossCheckWithCacheSim:
    """Replay small kernels through the LRU simulator and compare with
    the analytical models."""

    def _tiny_hierarchy(self):
        return CacheHierarchySpec(
            (
                CacheLevelSpec("L1", 4 * 1024, 64, 4),
                CacheLevelSpec("L2", 32 * 1024, 64, 8),
            )
        )

    def test_streaming_pass_traffic(self):
        """A cold streaming pass over W bytes moves ~W bytes into every
        level — the streaming model's l1/l2 figures."""
        spec = self._tiny_hierarchy()
        sim = CacheHierarchySim(spec)
        nbytes = 16 * 1024  # 4x L1, half of L2
        sim.access_range(0, nbytes, stride=8)
        t = sim.traffic_by_level()
        assert t["L1"] == nbytes
        assert t["L2"] == nbytes
        assert t["MEM"] == nbytes

    def test_second_pass_hits_containing_level(self):
        """Re-streaming a working set that fits L2 but not L1 refetches
        from L2 only — the locality discount streaming_traffic models
        for LLC-resident sets."""
        spec = self._tiny_hierarchy()
        sim = CacheHierarchySim(spec)
        nbytes = 16 * 1024
        sim.access_range(0, nbytes, stride=8)
        mem_after_first = sim.memory_bytes
        sim.access_range(0, nbytes, stride=8)
        assert sim.memory_bytes == mem_after_first  # no new DRAM traffic

    def test_blocked_reuse_cuts_memory_traffic(self):
        """Touching a block repeatedly (blocked gemm's reuse) produces
        far less memory traffic than streaming distinct data — the
        gemm_traffic volume/b model's premise."""
        spec = self._tiny_hierarchy()
        reuse = CacheHierarchySim(spec)
        block = 2 * 1024  # fits L1
        for _ in range(8):
            reuse.access_range(0, block, stride=8)
        stream = CacheHierarchySim(spec)
        stream.access_range(0, 8 * block, stride=8)
        assert reuse.memory_bytes == block
        assert stream.memory_bytes == 8 * block
