"""Algorithm registry."""

import pytest

from repro.algorithms.blocked import BlockedGemm
from repro.algorithms.caps import CapsStrassen
from repro.algorithms.registry import ALGORITHMS, make_algorithm, paper_algorithms
from repro.algorithms.strassen import StrassenWinograd
from repro.util.errors import ConfigurationError


def test_registry_contains_paper_fixtures():
    assert {"openblas", "strassen", "caps"} <= set(ALGORITHMS)


def test_make_algorithm(machine):
    assert isinstance(make_algorithm("openblas", machine), BlockedGemm)
    assert isinstance(make_algorithm("strassen", machine), StrassenWinograd)
    assert isinstance(make_algorithm("caps", machine), CapsStrassen)


def test_make_classic_variant(machine):
    alg = make_algorithm("strassen-classic", machine)
    assert isinstance(alg, StrassenWinograd)
    assert alg.classic


def test_kwargs_forwarded(machine):
    alg = make_algorithm("strassen", machine, cutoff=32)
    assert alg.cutoff == 32


def test_unknown_name(machine):
    with pytest.raises(ConfigurationError, match="available"):
        make_algorithm("magma", machine)


def test_paper_algorithms_order(machine):
    algs = paper_algorithms(machine)
    assert [a.name for a in algs] == ["openblas", "strassen", "caps"]
