"""Blocking selection, tile grids, parameter search."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.tuning import Blocking, select_blocking, tile_grid, tune_parameter
from repro.util.errors import ConfigurationError


def test_select_blocking_haswell(machine):
    b = select_blocking(machine)
    assert b.b1 < b.b2 < b.b3
    # Three b3^2 double tiles fit the 8 MiB LLC.
    assert 3 * b.b3**2 * 8 <= 8 * 2**20


def test_blocking_ordering_enforced():
    with pytest.raises(ConfigurationError):
        Blocking(100, 50, 200)


def test_tile_grid_covers_dimension_exactly():
    extents = tile_grid(1000, threads=3)
    assert extents[0][0] == 0
    assert sum(size for _, size in extents) == 1000
    offsets = [o for o, _ in extents]
    assert offsets == sorted(offsets)


def test_tile_grid_divisible_by_threads():
    """The grid prefers tile counts that divide the team evenly."""
    for threads in (1, 2, 3, 4):
        per_dim = len(tile_grid(4096, threads, min_tiles_per_thread=4))
        assert (per_dim * per_dim) % threads == 0


def test_tile_grid_enough_tasks():
    per_dim = len(tile_grid(4096, threads=4, min_tiles_per_thread=4))
    assert per_dim * per_dim >= 16


def test_tile_grid_small_n():
    extents = tile_grid(2, threads=4)
    assert sum(size for _, size in extents) == 2
    assert all(size >= 1 for _, size in extents)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5000),
    threads=st.integers(min_value=1, max_value=16),
    per=st.integers(min_value=1, max_value=8),
)
def test_tile_grid_partition_property(n, threads, per):
    extents = tile_grid(n, threads, per)
    # Exact, gap-free, non-overlapping partition of [0, n).
    pos = 0
    for offset, size in extents:
        assert offset == pos
        assert size >= 1
        pos += size
    assert pos == n


def test_tune_parameter_picks_minimum():
    best, scores = tune_parameter([16, 32, 64, 128], lambda c: abs(c - 64))
    assert best == 64
    assert scores[128] == 64


def test_tune_parameter_deterministic_ties():
    best, _ = tune_parameter([2, 1, 3], lambda c: 0.0)
    assert best == 1  # smallest candidate on ties


def test_tune_parameter_empty_rejected():
    with pytest.raises(ConfigurationError):
        tune_parameter([], lambda c: 0.0)
