"""Templated columnar lowering vs the recursive object path.

``build_arena`` stamps pre-built subtree templates into a
:class:`~repro.runtime.arena.TaskArena`; the object recursion
(``build(execute=False)``) stays the differential oracle.  These tests
pin the contract from ``MatmulAlgorithm.build_arena``: the arena must be
*bit-identical* to ``TaskArena.from_graph`` of the object lowering —
same tids, names, dependency lists, cost bytes, untied flags and
creator links — across every algorithm variant and branch (leaf, grain,
odd-size peel, BFS/DFS crossover, packing on/off).
"""

import pickle

import pytest

from repro.algorithms.blocked import BlockedGemm
from repro.algorithms.caps import CapsStrassen
from repro.algorithms.strassen import StrassenWinograd
from repro.runtime.arena import TaskArena
from repro.runtime.scheduler import Scheduler
from repro.testing.oracle import compare_schedules


def _assert_bit_identical(alg, n, threads):
    obj = alg.build(n, threads, execute=False)
    arena_build = alg.build_arena(n, threads)
    arena = arena_build.graph
    assert isinstance(arena, TaskArena)
    assert TaskArena.from_graph(obj.graph).structural_diff(arena) == []
    assert arena_build.cost_only
    assert (arena_build.variant, arena_build.cutoff) == (obj.variant, obj.cutoff)


class TestBitIdentity:
    @pytest.mark.parametrize("n", [64, 100, 128, 256, 512])
    @pytest.mark.parametrize("threads", [1, 3])
    def test_strassen_winograd(self, machine, n, threads):
        _assert_bit_identical(StrassenWinograd(machine), n, threads)

    def test_strassen_classic(self, machine):
        _assert_bit_identical(StrassenWinograd(machine, classic=True), 256, 2)

    def test_strassen_odd_peel(self, machine):
        alg = StrassenWinograd(machine, odd_strategy="peel")
        _assert_bit_identical(alg, 200, 2)
        _assert_bit_identical(alg, 1000, 4)

    @pytest.mark.parametrize("n", [64, 128, 256, 512])
    @pytest.mark.parametrize("threads", [1, 4])
    def test_caps(self, machine, n, threads):
        _assert_bit_identical(CapsStrassen(machine), n, threads)

    def test_caps_no_pack(self, machine):
        _assert_bit_identical(CapsStrassen(machine, pack=False), 256, 2)

    @pytest.mark.parametrize("cutoff_depth", [0, 1, 10])
    def test_caps_bfs_dfs_crossover(self, machine, cutoff_depth):
        alg = CapsStrassen(machine, cutoff_depth=cutoff_depth)
        _assert_bit_identical(alg, 512, 3)

    @pytest.mark.parametrize("n", [96, 512])
    def test_blocked(self, machine, n):
        _assert_bit_identical(BlockedGemm(machine), n, 4)

    def test_template_memo_reuse_stays_identical(self, machine):
        # The same instance lowers several cells; memoized subtree
        # templates must not leak state between problem sizes.
        alg = StrassenWinograd(machine)
        for n in (512, 64, 256, 100, 512):
            _assert_bit_identical(alg, n, 2)


class TestScheduling:
    def test_fast_engine_identical_on_both_shapes(self, machine):
        for alg in (StrassenWinograd(machine), CapsStrassen(machine)):
            for policy in ("fifo", "critical"):
                arena = alg.build_arena(256, 3).graph
                obj = alg.build(256, 3, execute=False).graph
                fa = Scheduler(
                    machine, 3, policy, execute=False, engine="fast"
                ).run(arena)
                fo = Scheduler(
                    machine, 3, policy, execute=False, engine="fast"
                ).run(obj)
                assert compare_schedules(fa, fo) == [], (alg.name, policy)
                # The measured quantities are *exactly* equal, not just
                # violation-free: same floats in, same decisions out.
                assert fa.makespan == fo.makespan
                assert fa.stats.busy_core_seconds == fo.stats.busy_core_seconds


class TestCacheRouting:
    def test_cost_only_builds_route_to_arena(self, machine):
        from repro.algorithms.base import BuildCache

        cache = BuildCache()
        alg = StrassenWinograd(machine)
        build = alg.build_cached(256, 2, execute=False, cache=cache)
        assert isinstance(build.graph, TaskArena)
        # Shared instance on a repeat hit.
        again = alg.build_cached(256, 2, execute=False, cache=cache)
        assert again is build
        assert cache.stats()["hits"] == 1

    def test_executed_builds_stay_object_graphs(self, machine):
        from repro.algorithms.base import BuildCache
        from repro.runtime.task import TaskGraph

        cache = BuildCache()
        alg = StrassenWinograd(machine)
        build = alg.build_cached(96, 2, execute=True, cache=cache)
        assert isinstance(build.graph, TaskGraph)
        schedule = Scheduler(machine, 2, execute=True).run(build.graph)
        assert schedule.makespan > 0
        assert build.verify().ok


class TestPickling:
    def test_algorithms_pickle_without_template_state(self, machine):
        for alg in (StrassenWinograd(machine), CapsStrassen(machine)):
            alg.build_arena(256, 2)  # warm the memo
            clone = pickle.loads(pickle.dumps(alg))
            a = clone.build_arena(256, 2).graph
            b = alg.build_arena(256, 2).graph
            assert a.structural_diff(b) == []

    def test_arena_build_survives_pickle(self, machine):
        alg = CapsStrassen(machine)
        build = alg.build_arena(256, 2)
        clone = pickle.loads(pickle.dumps(build))
        assert clone.graph.structural_diff(build.graph) == []
