"""Build cache: hit accounting, LRU eviction, and execute isolation."""

import numpy as np
import pytest

from repro.algorithms import StrassenWinograd
from repro.algorithms.registry import BuildCache, default_build_cache, make_algorithm


@pytest.fixture()
def cache():
    return BuildCache(maxsize=4)


def test_cost_only_builds_are_cached_and_shared(machine, cache):
    alg = StrassenWinograd(machine)
    first = alg.build_cached(128, 2, seed=0, execute=False, cache=cache)
    again = alg.build_cached(128, 2, seed=0, execute=False, cache=cache)
    assert again is first  # same immutable instance
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1
    assert len(cache) == 1


def test_key_includes_n_threads_seed(machine, cache):
    alg = StrassenWinograd(machine)
    a = alg.build_cached(128, 2, seed=0, execute=False, cache=cache)
    b = alg.build_cached(128, 4, seed=0, execute=False, cache=cache)
    c = alg.build_cached(256, 2, seed=0, execute=False, cache=cache)
    d = alg.build_cached(128, 2, seed=1, execute=False, cache=cache)
    assert len({id(x) for x in (a, b, c, d)}) == 4
    assert cache.stats()["misses"] == 4 and cache.stats()["hits"] == 0


def test_key_includes_algorithm_instance(machine, cache):
    one = StrassenWinograd(machine)
    two = StrassenWinograd(machine)
    a = one.build_cached(128, 2, seed=0, execute=False, cache=cache)
    b = two.build_cached(128, 2, seed=0, execute=False, cache=cache)
    assert a is not b  # different instances may be configured differently


def test_lru_eviction(machine):
    cache = BuildCache(maxsize=2)
    alg = StrassenWinograd(machine)
    alg.build_cached(128, 1, execute=False, cache=cache)
    alg.build_cached(128, 2, execute=False, cache=cache)
    alg.build_cached(128, 1, execute=False, cache=cache)  # refresh LRU order
    alg.build_cached(128, 3, execute=False, cache=cache)  # evicts threads=2
    assert len(cache) == 2
    alg.build_cached(128, 1, execute=False, cache=cache)
    assert cache.stats()["hits"] == 2  # threads=1 survived both times
    alg.build_cached(128, 2, execute=False, cache=cache)
    assert cache.stats()["misses"] == 4  # threads=2 was re-lowered


def test_executed_builds_never_cached_and_isolated(machine, cache):
    """execute=True must re-lower every time: executed graphs bind
    operand arrays and accumulate into C, so sharing would corrupt
    later runs."""
    from repro.sim.engine import Engine

    alg = make_algorithm("openblas", machine)
    first = alg.build_cached(64, 1, seed=0, execute=True, cache=cache)
    second = alg.build_cached(64, 1, seed=0, execute=True, cache=cache)
    assert first is not second
    assert len(cache) == 0  # nothing stored
    assert cache.stats()["misses"] == 2

    engine = Engine(machine)
    engine.run(first.graph, 1, execute=True)
    # Running `first` accumulated into its C; `second` must be pristine.
    assert np.any(first.c != 0.0)
    assert np.all(second.c == 0.0)
    engine.run(second.graph, 1, execute=True)
    np.testing.assert_array_equal(first.c, second.c)  # deterministic clone


def test_executed_request_never_served_from_cost_only_entry(machine, cache):
    """Regression: same (alg, n, threads, seed) key, cost-only lowering
    cached first — an execute=True request must NOT be satisfied by it
    (a cost-only build has no operands or compute closures; running it
    would silently produce an empty C)."""
    alg = make_algorithm("openblas", machine)
    cost_only = alg.build_cached(64, 1, seed=0, execute=False, cache=cache)
    assert cost_only.cost_only and len(cache) == 1

    executed = alg.build_cached(64, 1, seed=0, execute=True, cache=cache)
    assert executed is not cost_only
    assert not executed.cost_only
    assert executed.c is not None
    # The cost-only entry is still there, untouched, and still served
    # for cost-only requests.
    assert alg.build_cached(64, 1, seed=0, execute=False, cache=cache) is cost_only


def test_cost_only_request_drops_leaked_executed_entry(machine, cache):
    """Regression: if an executed build ever leaks into the cost-only
    slot (e.g. via a future code change), the cache must drop it and
    re-lower rather than hand out mutable arrays."""
    alg = make_algorithm("openblas", machine)
    # Forge the corruption the guard defends against.
    leaked = alg.build(64, 1, seed=0, execute=True)
    key = (id(alg), 64, 1, 0, False)
    cache._entries[key] = (alg, leaked)

    served = alg.build_cached(64, 1, seed=0, execute=False, cache=cache)
    assert served is not leaked
    assert served.cost_only
    # The forged entry was replaced by the fresh cost-only lowering.
    assert cache._entries[key][1] is served


def test_execute_build_returning_cost_only_is_rejected(machine, cache):
    """An algorithm whose build() ignores execute=True must be caught at
    the cache boundary, not discovered later as an empty C."""
    from repro.algorithms.base import BuildResult, MatmulAlgorithm
    from repro.util.errors import ValidationError

    class Broken(MatmulAlgorithm):
        name = "broken"
        display_name = "Broken"

        def flop_count(self, n):
            return 2.0 * n**3

        def build(self, n, threads, seed=0, execute=True):
            inner = make_algorithm("openblas", self.machine)
            return inner.build(n, threads, seed=seed, execute=False)

    with pytest.raises(ValidationError, match="cost-only"):
        Broken(machine).build_cached(64, 1, execute=True, cache=cache)


def test_eviction_never_crosses_the_execute_boundary(machine):
    """Fill a tiny cache past its maxsize with cost-only entries while
    interleaving executed requests: eviction churn must never let an
    executed request observe a cached object."""
    cache = BuildCache(maxsize=2)
    alg = make_algorithm("openblas", machine)
    # Keep every result alive: comparing bare id()s would false-positive
    # when the allocator reuses a freed address.
    seen = []
    for threads in (1, 2, 3, 1, 2):
        cost_only = alg.build_cached(64, threads, execute=False, cache=cache)
        executed = alg.build_cached(64, threads, execute=True, cache=cache)
        assert executed is not cost_only
        assert not executed.cost_only
        assert all(executed is not prev for prev in seen)  # freshly lowered
        seen.append(executed)
        assert len(cache) <= 2


def test_default_cache_is_process_wide(machine):
    cache = default_build_cache()
    assert default_build_cache() is cache
    baseline = cache.stats()["misses"]
    alg = StrassenWinograd(machine)
    alg.build_cached(128, 2, seed=123, execute=False)
    assert cache.stats()["misses"] == baseline + 1
