"""Build cache: hit accounting, LRU eviction, and execute isolation."""

import numpy as np
import pytest

from repro.algorithms import StrassenWinograd
from repro.algorithms.registry import BuildCache, default_build_cache, make_algorithm


@pytest.fixture()
def cache():
    return BuildCache(maxsize=4)


def test_cost_only_builds_are_cached_and_shared(machine, cache):
    alg = StrassenWinograd(machine)
    first = alg.build_cached(128, 2, seed=0, execute=False, cache=cache)
    again = alg.build_cached(128, 2, seed=0, execute=False, cache=cache)
    assert again is first  # same immutable instance
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1
    assert len(cache) == 1


def test_key_includes_n_threads_seed(machine, cache):
    alg = StrassenWinograd(machine)
    a = alg.build_cached(128, 2, seed=0, execute=False, cache=cache)
    b = alg.build_cached(128, 4, seed=0, execute=False, cache=cache)
    c = alg.build_cached(256, 2, seed=0, execute=False, cache=cache)
    d = alg.build_cached(128, 2, seed=1, execute=False, cache=cache)
    assert len({id(x) for x in (a, b, c, d)}) == 4
    assert cache.stats()["misses"] == 4 and cache.stats()["hits"] == 0


def test_key_includes_algorithm_instance(machine, cache):
    one = StrassenWinograd(machine)
    two = StrassenWinograd(machine)
    a = one.build_cached(128, 2, seed=0, execute=False, cache=cache)
    b = two.build_cached(128, 2, seed=0, execute=False, cache=cache)
    assert a is not b  # different instances may be configured differently


def test_lru_eviction(machine):
    cache = BuildCache(maxsize=2)
    alg = StrassenWinograd(machine)
    alg.build_cached(128, 1, execute=False, cache=cache)
    alg.build_cached(128, 2, execute=False, cache=cache)
    alg.build_cached(128, 1, execute=False, cache=cache)  # refresh LRU order
    alg.build_cached(128, 3, execute=False, cache=cache)  # evicts threads=2
    assert len(cache) == 2
    alg.build_cached(128, 1, execute=False, cache=cache)
    assert cache.stats()["hits"] == 2  # threads=1 survived both times
    alg.build_cached(128, 2, execute=False, cache=cache)
    assert cache.stats()["misses"] == 4  # threads=2 was re-lowered


def test_executed_builds_never_cached_and_isolated(machine, cache):
    """execute=True must re-lower every time: executed graphs bind
    operand arrays and accumulate into C, so sharing would corrupt
    later runs."""
    from repro.sim.engine import Engine

    alg = make_algorithm("openblas", machine)
    first = alg.build_cached(64, 1, seed=0, execute=True, cache=cache)
    second = alg.build_cached(64, 1, seed=0, execute=True, cache=cache)
    assert first is not second
    assert len(cache) == 0  # nothing stored
    assert cache.stats()["misses"] == 2

    engine = Engine(machine)
    engine.run(first.graph, 1, execute=True)
    # Running `first` accumulated into its C; `second` must be pristine.
    assert np.any(first.c != 0.0)
    assert np.all(second.c == 0.0)
    engine.run(second.graph, 1, execute=True)
    np.testing.assert_array_equal(first.c, second.c)  # deterministic clone


def test_default_cache_is_process_wide(machine):
    cache = default_build_cache()
    assert default_build_cache() is cache
    baseline = cache.stats()["misses"]
    alg = StrassenWinograd(machine)
    alg.build_cached(128, 2, seed=123, execute=False)
    assert cache.stats()["misses"] == baseline + 1
