"""The ``repro.api`` facade and the deprecation shims it supersedes."""

import pytest

from repro.api import RunOptions, Study, StudyRun
from repro.core.study import EnergyPerformanceStudy, StudyConfig
from repro.sim.engine import Engine
from repro.util.errors import ConfigurationError

CFG = dict(sizes=(128,), threads=(1, 2), execute_max_n=0, verify=False)


class TestRunOptions:
    def test_defaults(self):
        opts = RunOptions()
        assert opts.engine == "fast"
        assert opts.parallel is None
        assert opts.trace is False

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            RunOptions(engine="warp")

    def test_negative_parallel_rejected(self):
        with pytest.raises(ConfigurationError):
            RunOptions(parallel=-1)

    def test_engine_instance_accepted(self, machine):
        opts = RunOptions(engine=Engine(machine))
        assert isinstance(opts.engine, Engine)

    def test_transport_default_defers_to_environment(self):
        assert RunOptions().transport is None

    def test_known_transports_accepted(self):
        for transport in ("auto", "shm", "pickle"):
            assert RunOptions(transport=transport).transport == transport

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError, match="transport"):
            RunOptions(transport="osmosis")

    def test_run_with_checkpoint_and_resume(self, machine, tmp_path):
        """The facade plumbs checkpoint/resume through to the driver and
        a resumed run reproduces the original result exactly."""
        journal = tmp_path / "study.jsonl"
        first = Study(machine, **CFG).run(RunOptions(checkpoint=journal))
        assert journal.exists()
        resumed = Study(machine, **CFG).run(RunOptions(resume=journal))
        assert list(first.result.runs) == list(resumed.result.runs)
        for key in first.result.runs:
            a, b = first.result.runs[key], resumed.result.runs[key]
            assert a.elapsed_s == b.elapsed_s, key
            assert a.energy.package == b.energy.package, key

    def test_parallel_transports_match_serial(self, machine):
        serial = Study(machine, **CFG).run(RunOptions())
        for transport in ("shm", "pickle"):
            par = Study(machine, **CFG).run(
                RunOptions(parallel=2, transport=transport)
            )
            for key in serial.result.runs:
                a, b = serial.result.runs[key], par.result.runs[key]
                assert a.elapsed_s == b.elapsed_s, (transport, key)
                assert a.energy.package == b.energy.package, (transport, key)


class TestStudy:
    def test_defaults_to_paper_platform_and_matrix(self):
        study = Study()
        assert study.machine.name == "haswell-e3-1225"
        assert study.config == StudyConfig()

    def test_kwargs_override_config(self, machine):
        study = Study(machine, **CFG)
        assert study.config.sizes == (128,)
        assert study.config.execute_max_n == 0
        assert study.config.verify is False

    def test_config_object_plus_overrides(self, machine):
        study = Study(machine, config=StudyConfig(seed=7), sizes=(64,))
        assert study.config.seed == 7
        assert study.config.sizes == (64,)

    def test_run_returns_studyrun(self, machine):
        run = Study(machine, **CFG).run()
        assert isinstance(run, StudyRun)
        assert len(run.result.runs) == 6
        assert not run.traced
        assert run.tracer is None

    def test_run_options_execute_overrides(self, machine):
        run = Study(machine, sizes=(128,), threads=(1,), verify=False).run(
            RunOptions(execute_max_n=0)
        )
        assert run.result.measurement("openblas", 128, 1) is not None

    def test_untraced_run_rejects_trace_accessors(self, machine):
        run = Study(machine, **CFG).run()
        with pytest.raises(ConfigurationError):
            run.write_trace("nope.json")
        with pytest.raises(ConfigurationError):
            run.phase_summary()
        with pytest.raises(ConfigurationError):
            run.metrics_summary()

    def test_engine_choice_does_not_change_results(self, machine):
        fast = Study(machine, **CFG).run(RunOptions(engine="fast"))
        ref = Study(machine, **CFG).run(RunOptions(engine="reference"))
        for key in fast.result.runs:
            f = fast.result.runs[key]
            r = ref.result.runs[key]
            assert f.elapsed_s == pytest.approx(r.elapsed_s, rel=1e-9)
            assert f.energy.package == pytest.approx(r.energy.package, rel=1e-9)

    def test_facade_matches_legacy_driver(self, machine):
        new = Study(machine, **CFG).run().result
        legacy = EnergyPerformanceStudy(
            machine, config=StudyConfig(**CFG)
        ).run()
        assert set(new.runs) == set(legacy.runs)
        for key in new.runs:
            assert new.runs[key].elapsed_s == legacy.runs[key].elapsed_s
            assert new.runs[key].energy.package == legacy.runs[key].energy.package


class TestTracedFacade:
    def test_trace_true_populates_run(self, machine):
        run = Study(machine, **CFG).run(RunOptions(trace=True))
        assert run.traced
        assert run.wall_s > 0.0
        assert len(run.tracer.find("cell")) == 6
        assert run.metrics  # at least the lowering counters moved
        assert "phase" in run.phase_summary().to_ascii()
        assert "metric" in run.metrics_summary().to_ascii()

    def test_trace_path_writes_file_with_meta(self, machine, tmp_path):
        from repro.observability.export import read_trace_json, validate_chrome_trace

        out = tmp_path / "trace.json"
        run = Study(machine, **CFG).run(RunOptions(trace=out))
        assert run.trace_path == out
        data = read_trace_json(out)
        assert validate_chrome_trace(data) == []
        meta = data["otherData"]["meta"]
        assert meta["command"] == "repro.api.Study.run"
        assert meta["parallel"] == 0
        assert meta["wall_s"] == pytest.approx(run.wall_s)

    def test_facade_never_warns(self, machine, recwarn):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Study(machine, **CFG).run(RunOptions(parallel=1, trace=True))


class TestDeprecationShims:
    def test_engine_kwarg_warns_but_works(self, machine):
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            study = EnergyPerformanceStudy(
                machine, config=StudyConfig(**CFG), engine=Engine(machine)
            )
        assert len(study.run().runs) == 6

    def test_run_parallel_kwarg_warns_but_works(self, machine):
        study = EnergyPerformanceStudy(machine, config=StudyConfig(**CFG))
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            result = study.run(parallel=1)
        assert len(result.runs) == 6

    def test_avg_power_alias_warns_and_delegates(self, machine):
        result = Study(machine, **CFG).run().result
        with pytest.warns(DeprecationWarning, match="avg_power_w"):
            legacy = result.avg_power("openblas")
        assert legacy == result.avg_power_w("openblas")

    def test_plain_usage_does_not_warn(self, machine, recwarn):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            EnergyPerformanceStudy(machine, config=StudyConfig(**CFG)).run()


class TestAvailableEngines:
    def test_probe_covers_the_registry(self):
        from repro.api import available_engines

        probes = available_engines()
        assert set(probes) == {"reference", "fast", "compiled"}
        assert probes["reference"] == (True, "scalar oracle (pure Python)")
        assert probes["fast"] == (True, "vectorized numpy kernel")
        ok, detail = probes["compiled"]
        assert isinstance(ok, bool) and detail

    def test_compiled_probe_honours_toolchain_override(self, monkeypatch):
        from repro.api import available_engines

        monkeypatch.setenv("REPRO_COMPILED_TOOLCHAIN", "none")
        ok, detail = available_engines()["compiled"]
        assert not ok
        assert "REPRO_COMPILED_TOOLCHAIN=none" in detail

    def test_run_options_accept_compiled(self):
        assert RunOptions(engine="compiled").engine == "compiled"

    def test_compiled_study_matches_fast(self, machine):
        from repro.runtime.compiledpath import compiled_available

        if not compiled_available()[0]:
            pytest.skip("compiled engine unavailable")
        fast = Study(machine, **CFG).run(RunOptions(engine="fast"))
        comp = Study(machine, **CFG).run(RunOptions(engine="compiled"))
        for key in fast.result.runs:
            f, c = fast.result.runs[key], comp.result.runs[key]
            assert f.elapsed_s == c.elapsed_s
            assert f.energy.package == c.energy.package
