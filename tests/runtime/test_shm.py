"""Shared-memory arena transport: round-trip, lifecycle, leak safety.

The :mod:`repro.runtime.shm` layer must (a) round-trip an arena through
a named segment bit-for-bit and zero-copy, (b) never strand a
``/dev/shm/repro-arena-*`` segment — normal exit, exceptions,
``KeyboardInterrupt`` and double-close all end clean — and (c) degrade
gracefully (descriptor attach failures are loud and precise, missing
platform support falls back to pickling with a counted warning).
"""

import glob
import pickle

import numpy as np
import pytest

from repro.core.study import EnergyPerformanceStudy, StudyConfig
from repro.runtime import shm as shm_mod
from repro.runtime.arena import TaskArena
from repro.runtime.shm import (
    ArenaDescriptor,
    ArenaPool,
    attach_arena,
    detach_arena,
    shm_available,
)
from repro.runtime.task import TaskGraph
from repro.runtime.cost import TaskCost
from repro.sim.engine import Engine
from repro.util.errors import ConfigurationError, StudyCellError, ValidationError


def _leaked_segments() -> list[str]:
    return glob.glob("/dev/shm/repro-arena-*")


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this module must leave /dev/shm clean."""
    before = set(_leaked_segments())
    yield
    leaked = set(_leaked_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _small_arena(tasks: int = 20) -> TaskArena:
    g = TaskGraph("shm-test")
    for i in range(tasks):
        deps = (i - 1,) if i else ()
        g.add(
            f"t{i % 3}",
            TaskCost(flops=1e6 * (i + 1), bytes_dram=1e3 * i),
            deps=deps,
        )
    return TaskArena.from_graph(g)


def test_round_trip_is_structurally_identical():
    arena = _small_arena()
    with ArenaPool() as pool:
        att = attach_arena(arena.to_shm(pool))
        try:
            assert att.structural_diff(arena) == []
        finally:
            detach_arena(att)


def test_attached_columns_are_read_only_views():
    arena = _small_arena()
    with ArenaPool() as pool:
        att = attach_arena(arena.to_shm(pool))
        try:
            for attr, _ in shm_mod._COLUMN_SCHEMA:
                col = getattr(att, attr)
                assert not col.flags.writeable, attr
                assert not col.flags.owndata, f"{attr} was copied, not viewed"
            with pytest.raises((ValueError, RuntimeError)):
                att.flops[0] = 1.0
        finally:
            detach_arena(att)


def test_descriptor_is_compact_and_picklable():
    arena = _small_arena(200)
    with ArenaPool() as pool:
        desc = arena.to_shm(pool)
        blob = pickle.dumps(desc)
        assert len(blob) < 2048
        assert pickle.loads(blob) == desc


def test_put_deduplicates_by_arena_identity():
    arena = _small_arena()
    with ArenaPool() as pool:
        d1 = arena.to_shm(pool)
        d2 = arena.to_shm(pool)
        assert d1.segment == d2.segment
        assert len(pool) == 1


def test_release_refcounts_and_unlinks_at_zero():
    arena = _small_arena()
    pool = ArenaPool()
    try:
        d1 = pool.put(arena)
        pool.put(arena)  # refcount -> 2
        pool.release(d1)
        assert pool.active_segments() == (d1.segment,)
        pool.release(d1)
        assert pool.active_segments() == ()
        # releasing an already-unlinked descriptor is a no-op
        pool.release(d1)
    finally:
        pool.close()


def test_close_is_idempotent_and_unlinks_everything():
    pool = ArenaPool()
    pool.put(_small_arena())
    pool.put(_small_arena(7))
    assert len(pool) == 2
    pool.close()
    assert len(pool) == 0
    pool.close()  # second close: no-op, no error


def test_unlink_with_live_attachment_keeps_pages_alive():
    """POSIX semantics: the parent may unlink while a reader still maps
    the segment; the reader's view stays valid until it detaches."""
    arena = _small_arena()
    pool = ArenaPool()
    desc = pool.put(arena)
    att = attach_arena(desc)
    pool.close()  # unlink while attached
    try:
        assert att.structural_diff(arena) == []
        assert float(att.flops.sum()) == float(arena.flops.sum())
    finally:
        detach_arena(att)


def test_attach_after_unlink_raises_file_not_found():
    arena = _small_arena()
    pool = ArenaPool()
    desc = pool.put(arena)
    pool.close()
    with pytest.raises(FileNotFoundError):
        attach_arena(desc)


def test_schema_version_mismatch_rejected():
    with pytest.raises(ValidationError, match="schema v99"):
        ArenaDescriptor(
            segment="repro-arena-x",
            arena_name="x",
            names=("t",),
            columns=(),
            nbytes=0,
            schema=99,
        )


def test_detach_is_idempotent_and_releases_columns():
    arena = _small_arena()
    with ArenaPool() as pool:
        att = attach_arena(pool.put(arena))
        detach_arena(att)
        assert not hasattr(att, "flops")  # column views dropped
        detach_arena(att)  # second detach: no-op


def test_exception_inside_pool_context_still_unlinks():
    with pytest.raises(RuntimeError, match="boom"):
        with ArenaPool() as pool:
            pool.put(_small_arena())
            raise RuntimeError("boom")


def test_keyboard_interrupt_between_put_and_close_is_recoverable():
    """The study driver wraps pool usage in try/finally, so a Ctrl-C
    mid-sweep still reaches ``close`` — simulate exactly that contract."""
    pool = ArenaPool()
    try:
        pool.put(_small_arena())
        with pytest.raises(KeyboardInterrupt):
            try:
                raise KeyboardInterrupt
            finally:
                pool.close()
    finally:
        pool.close()
    assert len(pool) == 0


def test_shm_available_here():
    ok, reason = shm_available()
    assert ok, reason


def test_shm_available_rejects_absurd_sizes():
    ok, reason = shm_available(min_bytes=1 << 62)
    assert not ok
    assert "too small" in reason


def test_record_fallback_warns_once_and_counts(monkeypatch):
    monkeypatch.setattr(shm_mod, "_fallback_warned", False)
    before = shm_mod._SHM_FALLBACKS.value
    with pytest.warns(RuntimeWarning, match="falling back to pickling"):
        shm_mod.record_fallback("test reason")
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a second warning would raise
        shm_mod.record_fallback("test reason again")
    assert shm_mod._SHM_FALLBACKS.value == before + 2


def test_reset_fallback_warning_rearms_the_latch():
    """Regression: the warn-once latch is process-global state.  Before
    the reset hook existed, one early fallback silenced the warning for
    every later study in the process (and leaked between tests);
    reset_fallback_warning() must re-arm it without touching the
    counter."""
    before = shm_mod._SHM_FALLBACKS.value
    with pytest.warns(RuntimeWarning, match="falling back to pickling"):
        shm_mod.record_fallback("first unit of work")
    assert shm_mod._fallback_warned is True
    shm_mod.reset_fallback_warning()
    assert shm_mod._fallback_warned is False
    with pytest.warns(RuntimeWarning, match="falling back to pickling"):
        shm_mod.record_fallback("next unit of work")
    assert shm_mod._SHM_FALLBACKS.value == before + 2


def test_auto_transport_falls_back_when_unavailable(machine, monkeypatch):
    """transport='auto' on a host without shared memory must run the
    pickling path (warning once, counting the fallback) and still
    produce the full matrix."""
    monkeypatch.setattr(
        shm_mod, "shm_available", lambda min_bytes=0: (False, "forced off")
    )
    monkeypatch.setattr(shm_mod, "_fallback_warned", False)
    cfg = StudyConfig(sizes=(256,), threads=(1, 2), execute_max_n=0, verify=False)
    study = EnergyPerformanceStudy(
        machine, config=cfg, _engine=Engine(machine, engine="fast")
    )
    with pytest.warns(RuntimeWarning, match="forced off"):
        result = study._run(2, transport="auto")
    assert len(result.runs) == 3 * 1 * 2


def test_forced_shm_transport_errors_when_unavailable(machine, monkeypatch):
    monkeypatch.setattr(
        shm_mod, "shm_available", lambda min_bytes=0: (False, "forced off")
    )
    cfg = StudyConfig(sizes=(256,), threads=(1,), execute_max_n=0, verify=False)
    study = EnergyPerformanceStudy(
        machine, config=cfg, _engine=Engine(machine, engine="fast")
    )
    with pytest.raises(ConfigurationError, match="forced off"):
        study._run(2, transport="shm")


def test_unknown_transport_rejected(machine):
    cfg = StudyConfig(sizes=(256,), threads=(1,), execute_max_n=0, verify=False)
    study = EnergyPerformanceStudy(machine, config=cfg)
    with pytest.raises(ConfigurationError, match="carrier-pigeon"):
        study._run(2, transport="carrier-pigeon")


def test_stale_descriptor_in_cell_raises_study_cell_error(machine):
    """A worker whose segment vanished (unlinked early) must surface a
    StudyCellError carrying the cell coordinates, not a bare
    FileNotFoundError — exercised in-process through _run_cell."""
    from repro.algorithms.registry import make_algorithm
    from repro.core.study import _ShmBuild, _run_cell

    arena = _small_arena()
    pool = ArenaPool()
    desc = pool.put(arena)
    pool.close()  # segment gone; descriptor now stale
    alg = make_algorithm("strassen", machine)
    payload = (
        Engine(machine, engine="fast"),
        alg,
        2048,
        3,
        2015,
        False,
        False,
        _ShmBuild(descriptor=desc, n=2048, variant="winograd", cutoff=64),
    )
    with pytest.raises(StudyCellError) as exc_info:
        _run_cell(payload)
    err = exc_info.value
    assert (err.algorithm, err.size, err.threads) == (alg.name, 2048, 3)
    assert isinstance(err.__cause__, FileNotFoundError)


def test_pickling_attached_arena_deep_copies():
    """An shm-attached arena must survive pickling (the descriptor's
    __getstate__ drops the handle and copies the columns out)."""
    arena = _small_arena()
    with ArenaPool() as pool:
        att = attach_arena(arena.to_shm(pool))
        try:
            clone = pickle.loads(pickle.dumps(att))
        finally:
            detach_arena(att)
    assert clone.structural_diff(arena) == []
    assert getattr(clone, "_shm", None) is None
    assert clone.flops.flags.owndata
