"""The JIT-compiled event kernel: identity, fallback, and strictness.

The compiled C sweep transcribes the fast kernel's float arithmetic in
identical operand order (and is built with ``-ffp-contract=off``), so
against ``engine="fast"`` the contract is *bit identity* — equal
makespans, equal raw interval rows, equal records and statistics — not
merely tolerance agreement.  The tolerance contract against the
reference engine is inherited from the fast kernel and covered by the
verify harness's ``compiled_engine`` family.

Availability semantics mirror the shm transport's (PR 5):

* ``Scheduler(engine="compiled")`` on a host without a toolchain is a
  hard ``ConfigurationError`` — the caller explicitly asked.
* ``REPRO_ENGINE=compiled`` (an environment *preference*) degrades to
  the fast engine with a once-per-process ``RuntimeWarning`` and a
  counted ``engine.compiled_fallbacks``.
* ``execute=True`` runs real numerics the C kernel does not carry, so
  it falls back (counted, warned once) while staying correct.
"""

import pickle

import pytest

from repro.machine import generic_smp, haswell_e3_1225
from repro.machine.specs import dual_socket_haswell
from repro.runtime import compiledpath as cp
from repro.runtime.cost import TaskCost
from repro.runtime.scheduler import ENGINES, Scheduler, default_engine
from repro.runtime.task import TaskGraph
from repro.util.errors import ConfigurationError, SchedulingError

from .test_fastpath import POLICIES, random_dag, wide_graph

requires_cc = pytest.mark.skipif(
    not cp.compiled_available()[0],
    reason=f"compiled engine unavailable: {cp.compiled_available()[1]}",
)


def _run(machine, graph, policy, threads, engine):
    return Scheduler(
        machine, threads, policy, execute=False, engine=engine
    ).run(graph)


def assert_bit_identical(fast, comp):
    """The compiled schedule must equal the fast one bit-for-bit."""
    assert comp.makespan == fast.makespan
    assert len(comp.records) == len(fast.records)
    for f, c in zip(fast.records, comp.records):
        assert (f.tid, f.name, f.core, f.start, f.end) == (
            c.tid, c.name, c.core, c.start, c.end
        )
    assert len(comp.intervals) == len(fast.intervals)
    for f, c in zip(fast.intervals, comp.intervals):
        assert f == c
    assert len(comp.timelines) == len(fast.timelines)
    for f, c in zip(fast.timelines, comp.timelines):
        assert (f.core, f.busy, f.horizon) == (c.core, c.busy, c.horizon)
    assert comp.stats == fast.stats


# ---------------------------------------------------------------------------
# differential identity


@requires_cc
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("threads", [1, 2, 3, 4])
def test_bit_identical_wide(machine, policy, threads):
    graph = wide_graph()
    fast = _run(machine, graph, policy, threads, "fast")
    comp = _run(machine, graph, policy, threads, "compiled")
    assert_bit_identical(fast, comp)


@requires_cc
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_bit_identical_random_dag(machine, policy, seed):
    graph = random_dag(seed)
    for threads in (1, 2, 3, 4):
        fast = _run(machine, graph, policy, threads, "fast")
        comp = _run(machine, graph, policy, threads, "compiled")
        assert_bit_identical(fast, comp)


@requires_cc
@pytest.mark.parametrize("policy", POLICIES)
def test_bit_identical_dual_socket(policy):
    """Two sockets: the per-socket L3 repricing path in C."""
    machine = dual_socket_haswell()
    graph = random_dag(11, n=200)
    for threads in (2, 4, 8):
        fast = _run(machine, graph, policy, threads, "fast")
        comp = _run(machine, graph, policy, threads, "compiled")
        assert_bit_identical(fast, comp)


@requires_cc
@pytest.mark.parametrize("policy", POLICIES)
def test_bit_identical_many_cores(policy):
    """Above the fast kernel's numpy threshold (24 cores = 120 seat
    entries) the C kernel must still match the numpy event step."""
    machine = generic_smp(cores=24)
    graph = random_dag(5, n=300)
    fast = _run(machine, graph, policy, 24, "fast")
    comp = _run(machine, graph, policy, 24, "compiled")
    assert_bit_identical(fast, comp)


@requires_cc
@pytest.mark.parametrize("policy", POLICIES)
def test_bit_identical_strassen_arena(machine, policy):
    """A real columnar arena lowering through the CSR plan path."""
    from repro.algorithms import StrassenWinograd

    arena = StrassenWinograd(machine).build_arena(256, 4).graph
    fast = _run(machine, arena, policy, 4, "fast")
    comp = _run(machine, arena, policy, 4, "compiled")
    assert_bit_identical(fast, comp)


@requires_cc
def test_zero_cost_only(machine):
    g = TaskGraph("zeros")
    for i in range(20):
        g.add(f"z{i}", TaskCost(), deps=[i - 1] if i else [])
    for policy in POLICIES:
        fast = _run(machine, g, policy, 2, "fast")
        comp = _run(machine, g, policy, 2, "compiled")
        assert_bit_identical(fast, comp)
        assert comp.makespan == 0.0


# ---------------------------------------------------------------------------
# plan bundle caching


@requires_cc
def test_plan_bundle_cached_and_dropped_from_pickles(machine):
    g = wide_graph(30)
    sched = Scheduler(machine, 2, execute=False, engine="compiled")
    sched.run(g)
    bundle = getattr(g, cp._PLAN_ATTR)
    sched.run(g)
    assert getattr(g, cp._PLAN_ATTR) is bundle  # reused, not rebuilt

    g.add("late", TaskCost(flops=1e6), deps=[0])
    fast = Scheduler(machine, 2, execute=False, engine="fast").run(g)
    comp = sched.run(g)
    assert getattr(g, cp._PLAN_ATTR) is not bundle  # regrown for the new task
    assert_bit_identical(fast, comp)


@requires_cc
def test_arena_pickle_drops_plan_bundle(machine):
    from repro.algorithms import StrassenWinograd

    arena = StrassenWinograd(machine).build_arena(128, 2).graph
    Scheduler(machine, 2, execute=False, engine="compiled").run(arena)
    assert getattr(arena, cp._PLAN_ATTR, None) is not None
    clone = pickle.loads(pickle.dumps(arena))
    assert getattr(clone, cp._PLAN_ATTR, None) is None


# ---------------------------------------------------------------------------
# availability, fallback, strictness


def test_forced_compiled_without_toolchain_errors(machine, monkeypatch):
    monkeypatch.setenv("REPRO_COMPILED_TOOLCHAIN", "none")
    with pytest.raises(ConfigurationError, match="engine 'compiled'"):
        Scheduler(machine, 2, engine="compiled")


def test_invalid_toolchain_env_errors(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILED_TOOLCHAIN", "llvm")
    with pytest.raises(ConfigurationError, match="REPRO_COMPILED_TOOLCHAIN"):
        cp.compiled_available()


def test_unknown_engine_name_errors(machine):
    with pytest.raises(ConfigurationError, match="engine"):
        Scheduler(machine, 2, engine="turbo")


def test_env_preference_degrades_with_warning(monkeypatch):
    """REPRO_ENGINE=compiled is a preference, not a demand: without a
    toolchain it resolves to 'fast', warning once and counting."""
    monkeypatch.setenv("REPRO_ENGINE", "compiled")
    monkeypatch.setenv("REPRO_COMPILED_TOOLCHAIN", "none")
    before = cp._COMPILED_FALLBACKS.value
    with pytest.warns(RuntimeWarning, match="compiled event kernel"):
        assert default_engine() == "fast"
    assert cp._COMPILED_FALLBACKS.value == before + 1


@requires_cc
def test_execute_true_falls_back_counted(machine):
    """The C kernel is cost-only; execute=True degrades to run_fast
    (warn once, count every time) and still runs the numerics."""
    from repro.algorithms import StrassenWinograd

    build = StrassenWinograd(machine).build(64, 2, seed=0)
    before = cp._COMPILED_FALLBACKS.value
    sched = Scheduler(machine, 2, execute=True, engine="compiled")
    with pytest.warns(RuntimeWarning, match="execute=True"):
        comp = sched.run(build.graph)
    assert cp._COMPILED_FALLBACKS.value == before + 1
    fast = Scheduler(machine, 2, execute=True, engine="fast").run(
        StrassenWinograd(machine).build(64, 2, seed=0).graph
    )
    assert comp.makespan == fast.makespan


@requires_cc
def test_jit_failure_falls_back(machine, monkeypatch):
    """A compile/load failure inside run is recoverable: counted
    fallback to the fast kernel, identical results."""
    def boom():
        raise cp._JitError("simulated compile failure")

    monkeypatch.setattr(cp, "_load_kernel", boom)
    before = cp._COMPILED_FALLBACKS.value
    g = wide_graph(20)
    sched = Scheduler(machine, 2, execute=False, engine="compiled")
    with pytest.warns(RuntimeWarning, match="simulated compile failure"):
        comp = sched.run(g)
    assert cp._COMPILED_FALLBACKS.value == before + 1
    fast = Scheduler(machine, 2, execute=False, engine="fast").run(g)
    assert comp.makespan == fast.makespan


def test_record_fallback_warns_once_and_counts():
    before = cp._COMPILED_FALLBACKS.value
    with pytest.warns(RuntimeWarning, match="compiled event kernel"):
        cp.record_fallback("test reason")
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a second warning would raise
        cp.record_fallback("again")
    assert cp._COMPILED_FALLBACKS.value == before + 2
    cp.reset_fallback_warning()
    with pytest.warns(RuntimeWarning, match="compiled event kernel"):
        cp.record_fallback("re-armed")


# ---------------------------------------------------------------------------
# scheduling errors must propagate, never fall back


@requires_cc
def test_zero_rate_message_parity(machine):
    """A workload defect (demand with zero service rate) raises the
    same SchedulingError from both kernels — the compiled engine must
    not mask it behind a fallback."""
    g = TaskGraph("bad")
    g.add("bad/task", TaskCost(bytes_l1=100.0))

    def run(engine):
        sched = Scheduler(machine, 2, execute=False, engine=engine)
        sched._l1_bw = 0.0  # surgery: the cost API validates rates > 0
        with pytest.raises(SchedulingError) as exc:
            sched.run(g)
        return str(exc.value)

    assert run("fast") == run("compiled")
    assert "zero service rate" in run("fast")


# ---------------------------------------------------------------------------
# toolchain plumbing


@requires_cc
def test_warm_compile_loads_kernel(tmp_path, monkeypatch):
    """warm_compile() into a fresh cache dir compiles, caches, and a
    second call hits the cached .so (same mtime)."""
    import os

    monkeypatch.setenv("REPRO_JIT_CACHE", str(tmp_path))
    monkeypatch.setattr(cp, "_kernel", None)
    monkeypatch.setattr(cp, "_kernel_error", None)
    assert cp.warm_compile() is True
    sos = [f for f in os.listdir(tmp_path) if f.endswith(".so")]
    assert len(sos) == 1
    mtime = (tmp_path / sos[0]).stat().st_mtime_ns
    monkeypatch.setattr(cp, "_kernel", None)
    assert cp.warm_compile() is True
    assert (tmp_path / sos[0]).stat().st_mtime_ns == mtime


def test_engine_registry_and_probe():
    assert ENGINES == ("reference", "fast", "compiled")
    ok, reason = cp.compiled_available()
    assert isinstance(ok, bool) and isinstance(reason, str)
    assert cp.jit_cache_dir()
    if ok:
        assert cp.compiled_cc()


@requires_cc
def test_sweep_counter_ticks(machine):
    before = cp._CSWEEPS.value
    comp = _run(machine, wide_graph(40), "fifo", 4, "compiled")
    assert cp._CSWEEPS.value == before + len(comp.intervals)
