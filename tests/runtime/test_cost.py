"""TaskCost algebra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.cost import TaskCost, ZERO_COST
from repro.util.errors import ValidationError


def test_zero_cost():
    assert ZERO_COST.is_zero
    assert ZERO_COST.total_bytes == 0
    assert not TaskCost(flops=1).is_zero
    assert not TaskCost(bytes_dram=1).is_zero


def test_validation():
    with pytest.raises(ValidationError):
        TaskCost(flops=-1)
    with pytest.raises(ValidationError):
        TaskCost(efficiency=0)
    with pytest.raises(ValidationError):
        TaskCost(efficiency=1.5)
    with pytest.raises(ValidationError):
        TaskCost(bytes_l3=-1)


def test_arithmetic_intensity():
    c = TaskCost(flops=100, bytes_dram=50)
    assert c.arithmetic_intensity() == 2.0
    assert TaskCost(flops=10).arithmetic_intensity() == float("inf")


def test_add_sums_demands():
    a = TaskCost(flops=10, bytes_l1=1, bytes_l2=2, bytes_l3=3, bytes_dram=4)
    b = TaskCost(flops=20, bytes_l1=5, bytes_l2=6, bytes_l3=7, bytes_dram=8)
    c = a + b
    assert c.flops == 30
    assert (c.bytes_l1, c.bytes_l2, c.bytes_l3, c.bytes_dram) == (6, 8, 10, 12)


def test_add_preserves_compute_time():
    """The merged efficiency must keep total flop time invariant."""
    a = TaskCost(flops=100, efficiency=0.5)
    b = TaskCost(flops=300, efficiency=1.0)
    c = a + b
    t_separate = 100 / 0.5 + 300 / 1.0
    t_merged = c.flops / c.efficiency
    assert t_merged == pytest.approx(t_separate)


def test_add_zero_flops_efficiency():
    c = TaskCost(bytes_dram=10) + TaskCost(bytes_dram=5)
    assert c.efficiency == 1.0
    assert c.bytes_dram == 15


def test_scaled():
    c = TaskCost(flops=10, efficiency=0.4, bytes_dram=100).scaled(0.5)
    assert c.flops == 5
    assert c.bytes_dram == 50
    assert c.efficiency == 0.4


def test_scaled_rejects_negative():
    with pytest.raises(ValidationError):
        TaskCost(flops=1).scaled(-1)


def test_with_efficiency():
    c = TaskCost(flops=10, efficiency=0.5).with_efficiency(0.9)
    assert c.efficiency == 0.9
    assert c.flops == 10


@settings(max_examples=50, deadline=None)
@given(
    f1=st.floats(min_value=0, max_value=1e9),
    f2=st.floats(min_value=0, max_value=1e9),
    e1=st.floats(min_value=0.05, max_value=1.0),
    e2=st.floats(min_value=0.05, max_value=1.0),
)
def test_add_commutative_and_time_preserving(f1, f2, e1, e2):
    a = TaskCost(flops=f1, efficiency=e1)
    b = TaskCost(flops=f2, efficiency=e2)
    ab, ba = a + b, b + a
    assert ab.flops == ba.flops
    assert ab.efficiency == pytest.approx(ba.efficiency)
    if ab.flops > 0:
        assert ab.flops / ab.efficiency == pytest.approx(
            f1 / e1 + f2 / e2, rel=1e-9
        )
