"""Core timelines and runtime statistics."""

import pytest

from repro.runtime.stats import RuntimeStats
from repro.runtime.timeline import CoreTimeline
from repro.util.errors import ValidationError


class TestTimeline:
    def test_busy_and_idle(self):
        tl = CoreTimeline(0)
        tl.add_busy(0.0, 1.0)
        tl.add_busy(2.0, 3.0)
        tl.close(4.0)
        assert tl.busy_time == pytest.approx(2.0)
        assert tl.idle_time == pytest.approx(2.0)
        assert tl.utilization == pytest.approx(0.5)

    def test_contiguous_intervals_merge(self):
        tl = CoreTimeline(0)
        tl.add_busy(0.0, 1.0)
        tl.add_busy(1.0, 2.0)
        assert len(tl.busy) == 1
        assert tl.busy_time == pytest.approx(2.0)

    def test_overlap_rejected(self):
        tl = CoreTimeline(0)
        tl.add_busy(0.0, 2.0)
        with pytest.raises(ValidationError):
            tl.add_busy(1.0, 3.0)

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValidationError):
            CoreTimeline(0).add_busy(2.0, 1.0)

    def test_close_cannot_shrink(self):
        tl = CoreTimeline(0)
        tl.add_busy(0.0, 5.0)
        with pytest.raises(ValidationError):
            tl.close(4.0)

    def test_is_busy_at(self):
        tl = CoreTimeline(0)
        tl.add_busy(1.0, 2.0)
        assert not tl.is_busy_at(0.5)
        assert tl.is_busy_at(1.5)
        assert not tl.is_busy_at(2.0)  # half-open

    def test_empty_timeline(self):
        tl = CoreTimeline(0)
        tl.close(1.0)
        assert tl.utilization == 0.0
        assert tl.idle_time == 1.0


class TestStats:
    def _timelines(self):
        a = CoreTimeline(0)
        a.add_busy(0, 4)
        a.close(4)
        b = CoreTimeline(1)
        b.add_busy(0, 2)
        b.close(4)
        return [a, b]

    def test_from_run(self):
        stats = RuntimeStats.from_run(4.0, self._timelines(), task_count=10, threads=2)
        assert stats.busy_core_seconds == pytest.approx(6.0)
        assert stats.avg_parallelism == pytest.approx(1.5)
        assert stats.utilization == pytest.approx(0.75)
        assert stats.imbalance == pytest.approx(4.0 / 3.0)

    def test_zero_makespan(self):
        stats = RuntimeStats.from_run(0.0, [], task_count=0, threads=1)
        assert stats.avg_parallelism == 0.0
        assert stats.imbalance == 1.0

    def test_threads_validated(self):
        with pytest.raises(ValidationError):
            RuntimeStats.from_run(1.0, [], task_count=0, threads=0)
