"""OpenMP-like graph builder."""

import pytest

from repro.runtime.cost import TaskCost
from repro.runtime.openmp import OpenMP, omp_num_threads
from repro.util.errors import ConfigurationError


def test_omp_num_threads_env():
    assert omp_num_threads(default=2, environ={}) == 2
    assert omp_num_threads(environ={"OMP_NUM_THREADS": "3"}) == 3
    with pytest.raises(ConfigurationError):
        omp_num_threads(environ={"OMP_NUM_THREADS": "abc"})
    with pytest.raises(Exception):
        omp_num_threads(environ={"OMP_NUM_THREADS": "0"})


def test_task_and_taskwait():
    omp = OpenMP("g", 4)
    a = omp.task("a", TaskCost(flops=1))
    b = omp.task("b", TaskCost(flops=1))
    j = omp.taskwait([a, b])
    assert j.cost.is_zero
    assert set(j.deps) == {a.tid, b.tid}


def test_parallel_for_chunk_count_defaults_to_threads():
    omp = OpenMP("g", 4)
    join = omp.parallel_for("loop", TaskCost(flops=100))
    g = omp.graph
    chunks = [t for t in g if t.name.startswith("loop[")]
    assert len(chunks) == 4
    assert join.deps == tuple(t.tid for t in chunks)


def test_parallel_for_splits_cost_evenly():
    omp = OpenMP("g", 4)
    omp.parallel_for("loop", TaskCost(flops=100, bytes_dram=40))
    chunks = [t for t in omp.graph if t.name.startswith("loop[")]
    assert all(t.cost.flops == 25 for t in chunks)
    assert all(t.cost.bytes_dram == 10 for t in chunks)


def test_parallel_for_total_work_preserved():
    omp = OpenMP("g", 3)
    omp.parallel_for("loop", TaskCost(flops=99))
    total = sum(t.cost.flops for t in omp.graph)
    assert total == pytest.approx(99)


def test_parallel_for_without_join_returns_chunks():
    omp = OpenMP("g", 2)
    chunks = omp.parallel_for("loop", TaskCost(flops=10), join=False)
    assert isinstance(chunks, list) and len(chunks) == 2


def test_parallel_for_computes_length_checked():
    omp = OpenMP("g", 2)
    with pytest.raises(ConfigurationError):
        omp.parallel_for("loop", TaskCost(flops=10), chunk_computes=[None])


def test_parallel_for_chunk_computes_attached():
    hits = []
    omp = OpenMP("g", 2)
    omp.parallel_for(
        "loop",
        TaskCost(flops=10),
        chunk_computes=[lambda: hits.append(0), lambda: hits.append(1)],
    )
    for t in omp.graph:
        if t.compute:
            t.compute()
    assert sorted(hits) == [0, 1]


def test_sections():
    omp = OpenMP("g", 2)
    join = omp.sections("sec", [TaskCost(flops=1), TaskCost(flops=2)])
    secs = [t for t in omp.graph if "/sec" in t.name]
    assert len(secs) == 2
    assert len(join.deps) == 2


def test_sections_computes_mismatch():
    omp = OpenMP("g", 2)
    with pytest.raises(ConfigurationError):
        omp.sections("sec", [TaskCost(flops=1)], computes=[None, None])


def test_barrier_joins_all_sinks():
    omp = OpenMP("g", 2)
    a = omp.task("a")
    b = omp.task("b")
    bar = omp.barrier()
    assert set(bar.deps) == {a.tid, b.tid}


def test_single():
    omp = OpenMP("g", 4)
    t = omp.single("only", TaskCost(flops=5))
    assert t.cost.flops == 5


def test_dependencies_chain_through_regions(machine):
    from repro.runtime.scheduler import Scheduler

    omp = OpenMP("g", 2)
    first = omp.parallel_for("phase1", TaskCost(flops=2e9))
    omp.parallel_for("phase2", TaskCost(flops=2e9), deps=[first])
    sched = Scheduler(machine, threads=2).run(omp.graph)
    p1_end = max(r.end for r in sched.records if r.name.startswith("phase1["))
    p2_start = min(r.start for r in sched.records if r.name.startswith("phase2["))
    assert p2_start >= p1_end - 1e-12
