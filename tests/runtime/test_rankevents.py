"""Rank-event streams and the two network-simulation engines."""

import numpy as np
import pytest

from repro.runtime.rankevents import (
    KIND_COMPUTE,
    KIND_RECV,
    KIND_SEND,
    KIND_SYNC,
    NET_ENGINES,
    EventStreamBuilder,
)
from repro.util.errors import ValidationError


def small_program():
    """Two ranks, a message each way, a barrier, trailing compute."""
    b = EventStreamBuilder(2)
    b.compute(0, 1.0)
    b.compute(1, 3.0)
    b.message(0, 1, nbytes=64.0, duration=0.5)
    b.message(1, 0, nbytes=32.0, duration=0.25, rendezvous=True)
    b.barrier(duration=0.125)
    b.compute(0, 2.0)
    b.compute(1, 0.5)
    return b.build()


def test_compute_chains_serialize():
    b = EventStreamBuilder(2)
    first = b.compute(0, 1.0)
    second = b.compute(0, 2.0)
    other = b.compute(1, 5.0)
    finish = b.build().finish_times()
    assert finish[first] == 1.0
    assert finish[second] == 3.0  # chained, not concurrent
    assert finish[other] == 5.0  # independent rank


def test_eager_recv_waits_for_wire_and_receiver():
    b = EventStreamBuilder(2)
    b.compute(1, 10.0)  # receiver is busy
    send, recv = b.message(0, 1, nbytes=8.0, duration=0.5)
    finish = b.build().finish_times()
    assert finish[send] == 0.5  # eager send ignores the receiver
    assert finish[recv] == 10.0  # arrival waits for the receiver's chain


def test_rendezvous_send_waits_for_receiver():
    b = EventStreamBuilder(2)
    b.compute(1, 10.0)
    send, recv = b.message(0, 1, nbytes=8.0, duration=0.5, rendezvous=True)
    finish = b.build().finish_times()
    assert finish[send] == 10.5  # handshake: wire starts after the receiver
    assert finish[recv] == 10.5


def test_barrier_joins_every_rank():
    b = EventStreamBuilder(3)
    b.compute(0, 1.0)
    b.compute(1, 7.0)
    b.compute(2, 2.0)
    bar = b.barrier(duration=0.5)
    tails = [b.compute(r, 0.25) for r in range(3)]
    finish = b.build().finish_times()
    assert finish[bar] == 7.5
    assert all(finish[t] == 7.75 for t in tails)


def test_mark_recv_charges_bytes_without_time():
    b = EventStreamBuilder(1)
    b.compute(0, 1.0)
    b.mark_recv(0, 4096.0)
    prog = b.build()
    agg = prog.simulate()
    assert agg.total_s == 1.0  # accounting only, no time advance
    assert agg.recv_bytes[0] == 4096.0
    assert agg.sent_bytes[0] == 0.0


def test_engines_agree_bit_for_bit():
    prog = small_program()
    ev = prog.finish_times("events")
    rk = prog.finish_times("ranks")
    assert ev.tobytes() == rk.tobytes()
    a, b = prog.simulate("events"), prog.simulate("ranks")
    assert a.total_s == b.total_s
    assert a.compute_s.tobytes() == b.compute_s.tobytes()
    assert a.sent_bytes.tobytes() == b.sent_bytes.tobytes()
    assert a.recv_bytes.tobytes() == b.recv_bytes.tobytes()
    assert a.sync_s == b.sync_s


def test_aggregate_per_rank_reductions():
    prog = small_program()
    agg = prog.simulate()
    assert agg.compute_s.tolist() == [3.0, 3.5]
    assert agg.sent_bytes.tolist() == [64.0, 32.0]
    assert agg.recv_bytes.tolist() == [32.0, 64.0]
    assert agg.sync_s == 0.125
    assert agg.comm_bytes().tolist() == [96.0, 96.0]
    # Makespan: rank 1 computes 3.0, the rendezvous reply lands at
    # 3.25 on both ranks, the barrier adds 0.125, and rank 0's tail
    # compute adds 2.0.
    assert agg.total_s == 5.375


def test_program_counts_and_kinds():
    prog = small_program()
    assert len(prog) == prog.n_events == 9
    kinds = set(prog.kind.tolist())
    assert kinds == {KIND_COMPUTE, KIND_SEND, KIND_RECV, KIND_SYNC}
    assert prog.arena.dep_indptr[-1] == len(prog.arena.dep_indices)


def test_empty_stream_is_fine():
    prog = EventStreamBuilder(4).build()
    assert prog.n_events == 0
    agg = prog.simulate()
    assert agg.total_s == 0.0
    assert agg.compute_s.tolist() == [0.0] * 4


def test_builder_validation():
    with pytest.raises(Exception):
        EventStreamBuilder(0)
    b = EventStreamBuilder(2)
    with pytest.raises(ValidationError):
        b.compute(2, 1.0)  # rank out of range
    with pytest.raises(ValidationError):
        b.message(1, 1, 8.0, 0.1)  # self-message
    with pytest.raises(Exception):
        b.compute(0, -1.0)
    with pytest.raises(Exception):
        b.message(0, 1, -8.0, 0.1)


def test_unknown_engine_rejected():
    prog = small_program()
    assert set(NET_ENGINES) == {"events", "ranks"}
    with pytest.raises(ValidationError):
        prog.finish_times("threads")
