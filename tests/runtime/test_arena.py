"""The columnar SoA/CSR task arena: round-trips, vectorized metrics,
validation, pickling, and the scheduler bridge."""

import pickle

import numpy as np
import pytest

from repro.runtime.arena import (
    EXT_CREATOR,
    EXT_DEP,
    NO_CREATOR,
    NameInterner,
    TaskArena,
    TemplateBuilder,
)
from repro.runtime.cost import ZERO_COST, TaskCost
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskGraph
from repro.testing.generators import gen_graph_case
from repro.testing.oracle import compare_schedules
from repro.util.errors import SchedulingError, ValidationError


def _random_graph(seed):
    return gen_graph_case(seed, max_tasks=60).graph


# ---------------------------------------------------------------------------
# round-trips


class TestRoundTrip:
    def test_graph_arena_graph_is_bit_identical(self):
        for seed in range(25):
            g = _random_graph(seed)
            arena = g.to_arena()
            back = TaskGraph.from_arena(arena)
            assert arena.structural_diff(back.to_arena()) == [], seed

    def test_round_trip_preserves_every_field(self):
        g = _random_graph(7)
        back = TaskGraph.from_arena(g.to_arena())
        assert len(back) == len(g)
        assert back.name == g.name
        for a, b in zip(g.tasks, back.tasks):
            assert (a.tid, a.name, a.deps, a.untied, a.created_by) == (
                b.tid,
                b.name,
                b.deps,
                b.untied,
                b.created_by,
            )
            assert a.cost == b.cost

    def test_round_trip_drops_compute_closures(self):
        g = TaskGraph("with-compute")
        g.add("t0", TaskCost(flops=1.0), compute=lambda: None)
        back = TaskGraph.from_arena(g.to_arena())
        assert back.tasks[0].compute is None

    def test_successors_match_object_append_order(self):
        for seed in range(10):
            g = _random_graph(seed)
            arena = g.to_arena()
            assert arena.successors_lists() == g._successors, seed

    def test_structural_diff_detects_cost_skew(self):
        g = _random_graph(3)
        a = g.to_arena()
        g.tasks[0].cost = TaskCost(flops=g.tasks[0].cost.flops + 1.0)
        assert g.to_arena().structural_diff(a) != []


# ---------------------------------------------------------------------------
# vectorized metrics vs the object graph's scalar sweeps


class TestMetrics:
    def _durations(self, machine, graph, arena):
        sched = Scheduler(machine, threads=1, execute=False)
        durs = arena.uncontended_durations(
            sched._core_peak,
            sched._l1_bw,
            sched._l2_bw,
            machine.l3_bandwidth,
            machine.dram_bandwidth,
        )
        return sched.uncontended_duration, durs

    def test_critical_path_exact(self):
        for seed in range(20):
            case = gen_graph_case(seed, max_tasks=60)
            arena = case.graph.to_arena()
            fn, durs = self._durations(case.machine, case.graph, arena)
            assert case.graph.critical_path_seconds(fn) == (
                arena.critical_path_seconds(durs)
            ), seed

    def test_total_work_close(self):
        # np.sum pairs additions differently than Python sum: relative
        # tolerance, not bit equality, is the contract here.
        for seed in range(20):
            case = gen_graph_case(seed, max_tasks=60)
            arena = case.graph.to_arena()
            fn, durs = self._durations(case.machine, case.graph, arena)
            a = case.graph.total_work_seconds(fn)
            b = arena.total_work_seconds(durs)
            assert a == pytest.approx(b, rel=1e-12), seed

    def test_average_parallelism_consistent(self):
        case = gen_graph_case(11, max_tasks=60)
        arena = case.graph.to_arena()
        fn, durs = self._durations(case.machine, case.graph, arena)
        assert case.graph.average_parallelism(fn) == pytest.approx(
            arena.average_parallelism(durs), rel=1e-12
        )

    def test_uncontended_durations_match_scalar(self):
        case = gen_graph_case(5, max_tasks=60)
        arena = case.graph.to_arena()
        fn, durs = self._durations(case.machine, case.graph, arena)
        for t in case.graph.tasks:
            assert durs[t.tid] == fn(t), t


# ---------------------------------------------------------------------------
# validation


def _rebuild(arena, dep_indices=None, name_ids=None):
    from repro.runtime.arena import _COST_FIELDS

    return TaskArena(
        arena.name,
        arena.names,
        arena.name_ids if name_ids is None else name_ids,
        {f: getattr(arena, f) for f in _COST_FIELDS},
        arena.untied,
        arena.created_by,
        arena.dep_indptr,
        arena.dep_indices if dep_indices is None else dep_indices,
    )


def _graph_with_deps():
    g = TaskGraph("deps")
    a = g.add("a", TaskCost(flops=1.0))
    b = g.add("b", TaskCost(flops=1.0), deps=[a])
    g.add("c", TaskCost(flops=1.0), deps=[a, b])
    return g


class TestValidate:
    def test_unresolved_sentinel_rejected(self):
        arena = _graph_with_deps().to_arena()
        bad = arena.dep_indices.copy()
        bad[0] = EXT_DEP
        with pytest.raises(SchedulingError, match="sentinel"):
            _rebuild(arena, dep_indices=bad).validate()

    def test_forward_dep_rejected(self):
        arena = _graph_with_deps().to_arena()
        bad = arena.dep_indices.copy()
        bad[0] = len(arena) - 1  # task 1 now "depends" on the last task
        with pytest.raises(SchedulingError, match="unknown/future"):
            _rebuild(arena, dep_indices=bad).validate()

    def test_name_id_range_rejected(self):
        arena = _graph_with_deps().to_arena()
        bad = arena.name_ids.copy()
        bad[0] = len(arena.names)  # one past the interned table
        with pytest.raises(ValidationError):
            _rebuild(arena, name_ids=bad).validate()

    def test_template_builder_rejects_unresolved_splice(self):
        tb = TemplateBuilder(NameInterner())
        tb.emit("dangling", ZERO_COST, (EXT_DEP,), created_by=EXT_CREATOR)
        with pytest.raises(ValidationError):
            tb.to_arena("bad")


# ---------------------------------------------------------------------------
# pickling


class TestPickle:
    def test_round_trip_and_cache_drop(self):
        case = gen_graph_case(4, max_tasks=60)
        arena = case.graph.to_arena()
        # Warm the lazy caches and a fastpath plan.
        arena.names_list()
        arena.successors_lists()
        Scheduler(case.machine, threads=1, execute=False, engine="fast").run(arena)
        state = arena.__getstate__()
        assert not any(k.startswith("_c_") for k in state)
        assert "_fastpath_plan" not in state
        clone = pickle.loads(pickle.dumps(arena))
        assert arena.structural_diff(clone) == []

    def test_pickled_arena_schedules_identically(self):
        case = gen_graph_case(9, max_tasks=60)
        arena = case.graph.to_arena()
        clone = pickle.loads(pickle.dumps(arena))
        s1 = Scheduler(
            case.machine, case.threads, case.policy, execute=False
        ).run(arena)
        s2 = Scheduler(
            case.machine, case.threads, case.policy, execute=False
        ).run(clone)
        assert compare_schedules(s1, s2) == []


# ---------------------------------------------------------------------------
# scheduler bridge


class TestSchedulerBridge:
    def test_fast_engine_consumes_arena_natively(self):
        for seed in range(15):
            case = gen_graph_case(seed, max_tasks=60)
            arena = case.graph.to_arena()
            fast_arena = Scheduler(
                case.machine,
                case.threads,
                case.policy,
                execute=False,
                engine="fast",
            ).run(arena)
            fast_obj = Scheduler(
                case.machine,
                case.threads,
                case.policy,
                execute=False,
                engine="fast",
            ).run(case.graph)
            assert compare_schedules(fast_arena, fast_obj) == [], seed

    def test_reference_engine_inflates_arena(self):
        case = gen_graph_case(6, max_tasks=40)
        arena = case.graph.to_arena()
        ref_arena = Scheduler(
            case.machine, case.threads, case.policy, execute=False,
            engine="reference",
        ).run(arena)
        ref_obj = Scheduler(
            case.machine, case.threads, case.policy, execute=False,
            engine="reference",
        ).run(case.graph)
        assert compare_schedules(ref_arena, ref_obj) == []

    def test_execute_on_arena_raises(self, machine):
        g = TaskGraph("g")
        g.add("t", TaskCost(flops=1.0))
        arena = g.to_arena()
        for engine in ("fast", "reference"):
            with pytest.raises(SchedulingError, match="cost-only"):
                Scheduler(machine, 1, execute=True, engine=engine).run(arena)


# ---------------------------------------------------------------------------
# TaskGraph metric memoization (regression: add() must invalidate)


class TestMetricsMemo:
    def test_memo_hits_across_fresh_bound_methods(self, machine):
        g = TaskGraph("memo")
        g.add("a", TaskCost(flops=1e6, efficiency=1.0))
        sched = Scheduler(machine, threads=1, execute=False)
        first = g.critical_path_seconds(sched.uncontended_duration)
        calls = []

        class Probe:
            def __call__(self, task):
                calls.append(task.tid)
                return 1.0

        # Bound methods are recreated per access; the memo keys on the
        # underlying function + owner, so this second query must hit.
        assert g.critical_path_seconds(sched.uncontended_duration) == first
        probe = Probe()
        assert g.total_work_seconds(probe) == 1.0
        assert g.total_work_seconds(probe) == 1.0
        assert calls == [0]  # second query served from the memo

    def test_add_invalidates(self, machine):
        g = TaskGraph("memo")
        a = g.add("a", TaskCost(flops=1e6, efficiency=1.0))
        fn = lambda task: 2.0  # noqa: E731
        assert g.critical_path_seconds(fn) == 2.0
        assert g.total_work_seconds(fn) == 2.0
        g.add("b", TaskCost(flops=1e6, efficiency=1.0), deps=[a])
        assert g.critical_path_seconds(fn) == 4.0
        assert g.total_work_seconds(fn) == 4.0

    def test_distinct_functions_get_distinct_entries(self):
        g = TaskGraph("memo")
        g.add("a", TaskCost(flops=1e6, efficiency=1.0))
        assert g.total_work_seconds(lambda t: 1.0) == 1.0
        assert g.total_work_seconds(lambda t: 3.0) == 3.0
