"""Task graphs: construction, validation, structural metrics."""

import pytest

from repro.runtime.cost import TaskCost
from repro.runtime.task import TaskGraph
from repro.util.errors import SchedulingError, ValidationError


def chain(n=3):
    g = TaskGraph("chain")
    prev = None
    for i in range(n):
        prev = g.add(f"t{i}", TaskCost(flops=10), deps=[prev] if prev else [])
    return g


def diamond():
    g = TaskGraph("diamond")
    a = g.add("a", TaskCost(flops=1))
    b = g.add("b", TaskCost(flops=2), deps=[a])
    c = g.add("c", TaskCost(flops=3), deps=[a])
    d = g.add("d", TaskCost(flops=4), deps=[b, c])
    return g, (a, b, c, d)


def test_ids_are_dense_creation_order():
    g = chain(4)
    assert [t.tid for t in g] == [0, 1, 2, 3]


def test_forward_dependency_rejected():
    g = TaskGraph()
    with pytest.raises(SchedulingError):
        g.add("x", deps=[0])  # self/future reference


def test_deps_accept_task_objects():
    g = TaskGraph()
    a = g.add("a")
    b = g.add("b", deps=[a])
    assert b.deps == (a.tid,)


def test_successors_and_sources_sinks():
    g, (a, b, c, d) = diamond()
    assert set(g.successors(a.tid)) == {b.tid, c.tid}
    assert g.sources() == [a]
    assert g.sinks() == [d]


def test_join():
    g, (_, b, c, _) = diamond()
    j = g.join("j", [b, c])
    assert j.cost.is_zero
    assert set(j.deps) == {b.tid, c.tid}


def test_validate_ok():
    g, _ = diamond()
    g.validate()  # must not raise


def test_topological_order_respects_deps():
    g, _ = diamond()
    order = [t.tid for t in g.topological_order()]
    for t in g:
        for d in t.deps:
            assert order.index(d) < order.index(t.tid)


def test_total_cost():
    g, _ = diamond()
    assert g.total_cost().flops == 10


def test_critical_path_diamond():
    g, _ = diamond()
    dur = lambda t: float(t.cost.flops)
    # longest chain: a(1) -> c(3) -> d(4) = 8
    assert g.critical_path_seconds(dur) == pytest.approx(8.0)
    assert g.total_work_seconds(dur) == pytest.approx(10.0)
    assert g.average_parallelism(dur) == pytest.approx(10.0 / 8.0)


def test_critical_path_chain_equals_total():
    g = chain(5)
    dur = lambda t: 1.0
    assert g.critical_path_seconds(dur) == pytest.approx(5.0)
    assert g.average_parallelism(dur) == pytest.approx(1.0)


def test_task_lookup():
    g = chain(2)
    assert g.task(1).name == "t1"
    with pytest.raises(ValidationError):
        g.task(99)


def test_counts_by_prefix():
    g = TaskGraph()
    g.add("pre/128")
    g.add("mul/64")
    g.add("mul/64x")
    assert g.counts_by_prefix() == {"pre": 1, "mul": 2}


def test_empty_graph_metrics():
    g = TaskGraph()
    assert g.critical_path_seconds(lambda t: 1.0) == 0.0
    assert len(g) == 0


class TestSerialization:
    def _graph(self):
        g = TaskGraph("demo")
        a = g.add("a", TaskCost(flops=10, efficiency=0.5, bytes_dram=100))
        b = g.add("b", TaskCost(flops=20), deps=[a], untied=False, created_by=a)
        g.join("j", [b])
        return g

    def test_roundtrip_structure(self):
        g = self._graph()
        g2 = TaskGraph.from_dict(g.to_dict())
        assert len(g2) == len(g)
        assert g2.name == "demo"
        for t1, t2 in zip(g, g2):
            assert t1.name == t2.name
            assert t1.deps == t2.deps
            assert t1.untied == t2.untied
            assert t1.created_by == t2.created_by
            assert t1.cost == t2.cost

    def test_roundtrip_drops_closures(self):
        g = TaskGraph()
        g.add("x", TaskCost(flops=1), compute=lambda: None)
        g2 = TaskGraph.from_dict(g.to_dict())
        assert g2.task(0).compute is None

    def test_roundtrip_schedules_identically(self, machine):
        from repro.runtime.scheduler import Scheduler

        g = self._graph()
        g2 = TaskGraph.from_dict(g.to_dict())
        s1 = Scheduler(machine, 2, execute=False).run(g)
        s2 = Scheduler(machine, 2, execute=False).run(g2)
        assert s1.makespan == s2.makespan

    def test_json_serializable(self):
        import json

        json.dumps(self._graph().to_dict())


class TestDot:
    def test_dot_contains_nodes_and_edges(self):
        g = TaskGraph("dotted")
        a = g.add("work", TaskCost(flops=5))
        g.join("sync", [a])
        dot = g.to_dot()
        assert dot.startswith('digraph "dotted"')
        assert "t0 -> t1;" in dot
        assert "diamond" in dot  # zero-cost join shape
        assert "ellipse" in dot

    def test_dot_size_guard(self):
        g = TaskGraph()
        for i in range(12):
            g.add(f"t{i}", TaskCost(flops=1))
        with pytest.raises(ValidationError):
            g.to_dot(max_tasks=10)
