"""Discrete-event scheduler: correctness, contention, Graham bounds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.cost import TaskCost
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskGraph
from repro.util.errors import ConfigurationError


def flop_task_graph(n_tasks, flops=1e9, efficiency=1.0):
    g = TaskGraph("flops")
    for i in range(n_tasks):
        g.add(f"t{i}", TaskCost(flops=flops, efficiency=efficiency))
    return g


class TestBasics:
    def test_single_compute_task_duration(self, machine):
        g = flop_task_graph(1, flops=51.2e9, efficiency=1.0)
        sched = Scheduler(machine, threads=1).run(g)
        assert sched.makespan == pytest.approx(1.0)

    def test_efficiency_slows_compute(self, machine):
        g = flop_task_graph(1, flops=51.2e9, efficiency=0.5)
        sched = Scheduler(machine, threads=1).run(g)
        assert sched.makespan == pytest.approx(2.0)

    def test_independent_tasks_scale_linearly(self, machine):
        g = flop_task_graph(8, flops=51.2e9)
        t1 = Scheduler(machine, threads=1).run(g).makespan
        t4 = Scheduler(machine, threads=4).run(g).makespan
        assert t1 == pytest.approx(8.0)
        assert t4 == pytest.approx(2.0)

    def test_dependency_chain_serializes(self, machine):
        g = TaskGraph()
        prev = None
        for i in range(4):
            prev = g.add(f"t{i}", TaskCost(flops=51.2e9), deps=[prev] if prev else [])
        sched = Scheduler(machine, threads=4).run(g)
        assert sched.makespan == pytest.approx(4.0)
        assert sched.stats.avg_parallelism == pytest.approx(1.0)

    def test_records_cover_all_tasks(self, machine):
        g = flop_task_graph(5)
        sched = Scheduler(machine, threads=2).run(g)
        assert sorted(r.tid for r in sched.records) == list(range(5))

    def test_records_respect_dependencies(self, machine):
        g = TaskGraph()
        a = g.add("a", TaskCost(flops=1e9))
        b = g.add("b", TaskCost(flops=1e9), deps=[a])
        sched = Scheduler(machine, threads=2).run(g)
        ra, rb = sched.record_for(a.tid), sched.record_for(b.tid)
        assert rb.start >= ra.end - 1e-12

    def test_zero_cost_tasks_take_no_core(self, machine):
        g = TaskGraph()
        a = g.add("a", TaskCost(flops=1e9))
        j = g.join("join", [a])
        b = g.add("b", TaskCost(flops=1e9), deps=[j])
        sched = Scheduler(machine, threads=1).run(g)
        rec = sched.record_for(j.tid)
        assert rec.core == -1
        assert rec.duration == 0.0


class TestContention:
    def test_dram_bandwidth_shared(self, machine):
        """Two memory-only tasks on two cores take as long as serial:
        the single channel is the bottleneck."""
        nbytes = machine.dram_bandwidth  # 1 second worth each
        g = TaskGraph()
        g.add("m0", TaskCost(flops=1, bytes_dram=nbytes))
        g.add("m1", TaskCost(flops=1, bytes_dram=nbytes))
        t1 = Scheduler(machine, threads=1).run(g).makespan
        t2 = Scheduler(machine, threads=2).run(g).makespan
        assert t1 == pytest.approx(2.0, rel=1e-6)
        assert t2 == pytest.approx(2.0, rel=1e-6)

    def test_compute_overlaps_memory(self, machine):
        """A task finishes when its *slowest* dimension finishes."""
        g = TaskGraph()
        g.add("t", TaskCost(flops=51.2e9, bytes_dram=machine.dram_bandwidth / 2))
        sched = Scheduler(machine, threads=1).run(g)
        assert sched.makespan == pytest.approx(1.0)  # compute bound, mem hidden

    def test_memory_bound_task(self, machine):
        g = TaskGraph()
        g.add("t", TaskCost(flops=1e6, bytes_dram=machine.dram_bandwidth * 2))
        sched = Scheduler(machine, threads=1).run(g)
        assert sched.makespan == pytest.approx(2.0, rel=1e-6)

    def test_bandwidth_released_when_task_finishes_memory(self, machine):
        """A short memory task frees its share for the longer one."""
        bw = machine.dram_bandwidth
        g = TaskGraph()
        g.add("short", TaskCost(flops=1, bytes_dram=bw / 4))
        g.add("long", TaskCost(flops=1, bytes_dram=bw))
        sched = Scheduler(machine, threads=2).run(g)
        # short: 0.25s of half-bw -> done at 0.5s; long gets 0.25 bw-sec
        # by then, remaining 0.75 at full bw -> 1.25s total.
        assert sched.makespan == pytest.approx(1.25, rel=1e-6)

    def test_compute_is_private_no_contention(self, machine):
        g = flop_task_graph(4, flops=51.2e9)
        sched = Scheduler(machine, threads=4).run(g)
        assert sched.makespan == pytest.approx(1.0)


class TestPolicies:
    def _graph(self):
        g = TaskGraph()
        for i in range(6):
            g.add(f"t{i}", TaskCost(flops=(i + 1) * 1e9))
        return g

    @pytest.mark.parametrize("policy", ["fifo", "lifo", "critical"])
    def test_all_policies_complete_all_tasks(self, machine, policy):
        sched = Scheduler(machine, threads=2, policy=policy).run(self._graph())
        assert len([r for r in sched.records if r.core >= 0]) == 6

    def test_unknown_policy_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            Scheduler(machine, threads=1, policy="random")

    def test_critical_policy_prefers_long_chains(self, machine):
        """With the critical-path policy, the head of the long chain is
        scheduled before unrelated short work on a single core."""
        g = TaskGraph()
        short = g.add("short", TaskCost(flops=1e9))
        head = g.add("head", TaskCost(flops=1e9))
        tail = g.add("tail", TaskCost(flops=50e9), deps=[head])
        sched = Scheduler(machine, threads=1, policy="critical").run(g)
        assert sched.record_for(head.tid).start < sched.record_for(short.tid).start


class TestValidation:
    def test_thread_bounds(self, machine):
        with pytest.raises(ConfigurationError):
            Scheduler(machine, threads=0)
        with pytest.raises(ConfigurationError):
            Scheduler(machine, threads=machine.cores + 1)

    def test_compute_closures_run_in_dependency_order(self, machine):
        order = []
        g = TaskGraph()
        a = g.add("a", TaskCost(flops=1e9), compute=lambda: order.append("a"))
        g.add("b", TaskCost(flops=1e9), deps=[a], compute=lambda: order.append("b"))
        Scheduler(machine, threads=4, execute=True).run(g)
        assert order == ["a", "b"]

    def test_execute_false_skips_closures(self, machine):
        hit = []
        g = TaskGraph()
        g.add("a", TaskCost(flops=1e9), compute=lambda: hit.append(1))
        Scheduler(machine, threads=1, execute=False).run(g)
        assert hit == []


class TestGrahamBounds:
    """List scheduling guarantees: T1/P <= makespan <= T1/P + Tinf."""

    @settings(max_examples=20, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=1e8, max_value=5e10),  # flops
                st.integers(min_value=0, max_value=3),  # dep fan-in
            ),
            min_size=1,
            max_size=25,
        ),
        threads=st.integers(min_value=1, max_value=4),
    )
    def test_makespan_within_graham_bounds(self, machine, data, threads):
        g = TaskGraph("random")
        rngish = 0
        for i, (flops, fanin) in enumerate(data):
            deps = []
            for k in range(min(fanin, i)):
                rngish = (rngish * 1103515245 + 12345 + i + k) % (2**31)
                deps.append(rngish % i)
            g.add(f"t{i}", TaskCost(flops=flops), deps=sorted(set(deps)))
        scheduler = Scheduler(machine, threads=threads, execute=False)
        sched = scheduler.run(g)
        dur = scheduler.uncontended_duration
        t1 = g.total_work_seconds(dur)
        tinf = g.critical_path_seconds(dur)
        assert sched.makespan >= max(t1 / threads, tinf) - 1e-9
        assert sched.makespan <= t1 / threads + tinf + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(threads=st.integers(min_value=1, max_value=4),
           n=st.integers(min_value=1, max_value=30))
    def test_work_conservation(self, machine, threads, n):
        """Total busy core-seconds equals total task time (compute-only
        tasks have no contention)."""
        g = flop_task_graph(n, flops=1e9)
        scheduler = Scheduler(machine, threads=threads, execute=False)
        sched = scheduler.run(g)
        per_task = 1e9 / machine.core_peak_flops
        assert sched.stats.busy_core_seconds == pytest.approx(n * per_task, rel=1e-9)


class TestWorkStealing:
    def test_steal_policy_completes_and_verifies(self, machine):
        from repro.algorithms import StrassenWinograd

        alg = StrassenWinograd(machine, cutoff=32, grain=32)
        build = alg.build(128, threads=4)
        Scheduler(machine, threads=4, policy="steal").run(build.graph)
        assert build.verify().ok

    def test_steals_counted_on_imbalanced_spawn(self, machine):
        """All children spawned from one core's task: other cores must
        steal to make progress."""
        g = TaskGraph()
        root = g.add("root", TaskCost(flops=1e9))
        for i in range(8):
            g.add(f"kid{i}", TaskCost(flops=1e9), deps=[root], created_by=root)
        sched = Scheduler(machine, threads=4, policy="steal", execute=False).run(g)
        assert sched.stats.steals >= 3  # at least the other three cores

    def test_no_steals_single_thread(self, machine):
        g = TaskGraph()
        root = g.add("root", TaskCost(flops=1e9))
        g.add("kid", TaskCost(flops=1e9), deps=[root], created_by=root)
        sched = Scheduler(machine, threads=1, policy="steal", execute=False).run(g)
        assert sched.stats.steals == 0

    def test_steal_makespan_within_graham(self, machine):
        g = TaskGraph()
        root = g.add("root", TaskCost(flops=1e9))
        for i in range(12):
            g.add(f"kid{i}", TaskCost(flops=2e9), deps=[root], created_by=root)
        scheduler = Scheduler(machine, threads=4, policy="steal", execute=False)
        sched = scheduler.run(g)
        dur = scheduler.uncontended_duration
        t1 = g.total_work_seconds(dur)
        tinf = g.critical_path_seconds(dur)
        assert sched.makespan <= t1 / 4 + tinf + 1e-9

    def test_own_work_preferred_over_stealing(self, machine):
        """A core with local work takes it LIFO before raiding others."""
        g = TaskGraph()
        r0 = g.add("r0", TaskCost(flops=1e9))
        r1 = g.add("r1", TaskCost(flops=1e9))
        # Each root spawns one child; with 2 cores, each child should
        # run on its creator's core (no steals needed).
        g.add("k0", TaskCost(flops=1e9), deps=[r0], created_by=r0)
        g.add("k1", TaskCost(flops=1e9), deps=[r1], created_by=r1)
        sched = Scheduler(machine, threads=2, policy="steal", execute=False).run(g)
        assert sched.stats.steals == 0
        assert sched.stats.migrations == 0


class TestMultiSocketL3:
    def _dual_socket(self):
        from dataclasses import replace

        from repro.machine import haswell_e3_1225
        from repro.machine.topology import MachineTopology, SocketSpec, CoreSpec

        m = haswell_e3_1225()
        topo = MachineTopology((SocketSpec(2, CoreSpec()), SocketSpec(2, CoreSpec())))
        return replace(m, topology=topo)

    def test_l3_bandwidth_is_per_socket(self, machine):
        """Two L3-heavy tasks split one socket's LLC bandwidth, but get
        a full domain each when placed on different sockets."""
        dual = self._dual_socket()
        nbytes = dual.l3_bandwidth  # one second of L3 traffic each
        g = TaskGraph()
        g.add("a", TaskCost(flops=1, bytes_l3=nbytes))
        g.add("b", TaskCost(flops=1, bytes_l3=nbytes))
        # 2 threads on ONE socket (cores 0, 1): contend -> ~2 s.
        same = Scheduler(dual, threads=2, execute=False).run(g)
        assert same.makespan == pytest.approx(2.0, rel=1e-6)
        # 4 threads (both sockets): FIFO puts the two tasks on cores
        # 0 and 1... so force separation with 3 threads: core 2 is on
        # socket 1. With 3 workers the two tasks land on cores 2 and 1?
        # Dispatch picks free_cores[-1] first = core 0, then core 1.
        # Instead compare against the single-socket 4-core machine.
        quad = Scheduler(machine, threads=2, execute=False).run(g)
        assert quad.makespan == pytest.approx(2.0, rel=1e-6)

    def test_cross_socket_placement_doubles_l3_throughput(self):
        """With one worker per socket, each task owns a full LLC."""
        from dataclasses import replace

        dual = self._dual_socket()
        # 1 core per socket: threads=2 maps to (s0c0, s0c1)... the
        # socket-major order gives cores 0,1 on socket 0.  Build a
        # 1-core-per-socket topology instead.
        from repro.machine.topology import MachineTopology, SocketSpec, CoreSpec

        spread = replace(
            dual,
            topology=MachineTopology((SocketSpec(1, CoreSpec()), SocketSpec(1, CoreSpec()))),
        )
        nbytes = spread.l3_bandwidth
        g = TaskGraph()
        g.add("a", TaskCost(flops=1, bytes_l3=nbytes))
        g.add("b", TaskCost(flops=1, bytes_l3=nbytes))
        sched = Scheduler(spread, threads=2, execute=False).run(g)
        assert sched.makespan == pytest.approx(1.0, rel=1e-6)

    def test_dram_still_machine_wide(self):
        """Memory channels remain shared across sockets."""
        from dataclasses import replace

        from repro.machine.topology import MachineTopology, SocketSpec, CoreSpec

        dual = self._dual_socket()
        spread = replace(
            dual,
            topology=MachineTopology((SocketSpec(1, CoreSpec()), SocketSpec(1, CoreSpec()))),
        )
        nbytes = spread.dram_bandwidth
        g = TaskGraph()
        g.add("a", TaskCost(flops=1, bytes_dram=nbytes))
        g.add("b", TaskCost(flops=1, bytes_dram=nbytes))
        sched = Scheduler(spread, threads=2, execute=False).run(g)
        assert sched.makespan == pytest.approx(2.0, rel=1e-6)
