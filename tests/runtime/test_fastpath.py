"""Differential identity: the fast event kernel vs the reference loop.

The fast kernel (:mod:`repro.runtime.fastpath`) must reproduce the
reference scalar loop's schedule *decision-for-decision*: identical
makespan, identical task records (placement, order, start/end times),
and identical activity intervals.  The single permitted structural
difference is interval bookkeeping around sub-EPS residues: the
reference sometimes emits zero-width intervals when it zeroes trivial
demands stepwise, while the fast kernel folds those into the adjacent
interval.  :func:`canonical_intervals` merges zero-width intervals
backward so both engines compare on the same canonical sequence; every
activity integral is preserved by the merge.

The comparison contract is layered:

* makespan, record times, interval bounds, and whole-run activity
  integrals: 1e-12 relative.  (The fast kernel's work-space exhaust
  corrections make the integrals conserve demand exactly like the
  reference's stepwise ``rem -= rate*dt`` accounting.)
* per-interval activity rows: 1e-9 relative to the row, with a
  1e-12-of-the-run-total floor for near-zero rows.  The engines'
  event times agree only to a few ulps (absolute exhaust times versus
  stepwise decrements), and on a nanosecond-wide interval that time
  ulp times a 1e11 B/s bandwidth is ~1e-6 bytes — a ~1e-9 relative
  wiggle in the row itself.  A real accounting bug (wrong rate seated,
  missed exhaust) shifts a row at O(1) relative, nine orders above.
"""

import random

import pytest

from repro.machine import generic_smp, haswell_e3_1225
from repro.machine.specs import dual_socket_haswell
from repro.runtime.cost import TaskCost
from repro.runtime.scheduler import ActivityInterval, Scheduler
from repro.runtime.task import TaskGraph

REL = 1e-12

POLICIES = ("fifo", "lifo", "critical", "steal")


# ---------------------------------------------------------------------------
# comparison helpers


def canonical_intervals(intervals):
    """Merge zero-width intervals backward into their predecessor.

    Preserves every activity integral (flops, bytes per level, and
    busy-core-seconds) exactly; only the degenerate zero-duration
    bookkeeping rows disappear.  A leading zero-width interval (no
    predecessor) is kept as-is.
    """
    out: list[ActivityInterval] = []
    for iv in intervals:
        if out and iv.t_end == iv.t_start:
            p = out[-1]
            out[-1] = ActivityInterval(
                t_start=p.t_start,
                t_end=p.t_end,
                busy_cores=p.busy_cores,
                flops=p.flops + iv.flops,
                bytes_l1=p.bytes_l1 + iv.bytes_l1,
                bytes_l2=p.bytes_l2 + iv.bytes_l2,
                bytes_l3=p.bytes_l3 + iv.bytes_l3,
                bytes_dram=p.bytes_dram + iv.bytes_dram,
            )
        else:
            out.append(iv)
    return out


REL_ROW = 1e-9  # per-interval rows (see module docstring)


def _close(a: float, b: float, scale: float = 0.0) -> bool:
    return abs(a - b) <= REL * max(1.0, abs(a), abs(b), scale)


def _close_row(a: float, b: float, total: float) -> bool:
    return abs(a - b) <= max(
        REL_ROW * max(abs(a), abs(b)), REL * max(1.0, total)
    )


def assert_schedules_match(ref, fast):
    """Assert the reference and fast schedules are identical (within
    1e-12 relative) in makespan, records, and canonical intervals."""
    assert _close(ref.makespan, fast.makespan), (
        f"makespan diverged: {ref.makespan!r} vs {fast.makespan!r}"
    )

    assert len(ref.records) == len(fast.records)
    for r, f in zip(ref.records, fast.records):
        assert (r.tid, r.name, r.core) == (f.tid, f.name, f.core), (
            f"placement diverged: {r} vs {f}"
        )
        assert _close(r.start, f.start) and _close(r.end, f.end), (
            f"timing diverged: {r} vs {f}"
        )

    ri = canonical_intervals(ref.intervals)
    fi = canonical_intervals(fast.intervals)
    assert len(ri) == len(fi), (
        f"interval count diverged: {len(ri)} vs {len(fi)}"
    )
    dims = ("flops", "bytes_l1", "bytes_l2", "bytes_l3", "bytes_dram")
    # Run-scale anchors for the per-interval rows (see module docstring).
    totals = {d: sum(getattr(i, d) for i in ref.intervals) for d in dims}
    busy_total = ref.stats.busy_core_seconds
    for k, (a, b) in enumerate(zip(ri, fi)):
        assert _close(a.t_start, b.t_start) and _close(a.t_end, b.t_end), (
            f"interval[{k}] bounds diverged: {a} vs {b}"
        )
        for dim in dims:
            assert _close_row(getattr(a, dim), getattr(b, dim), totals[dim]), (
                f"interval[{k}].{dim} diverged: {a} vs {b}"
            )
        assert _close_row(
            a.busy_cores * a.duration, b.busy_cores * b.duration, busy_total
        ), f"interval[{k}] busy-core-seconds diverged: {a} vs {b}"

    # Whole-run activity integrals (insensitive to canonicalization).
    for dim in ("flops", "bytes_l1", "bytes_l2", "bytes_l3", "bytes_dram"):
        sa = sum(getattr(i, dim) for i in ref.intervals)
        sb = sum(getattr(i, dim) for i in fast.intervals)
        assert _close(sa, sb), f"total {dim} diverged: {sa} vs {sb}"

    # Scheduler statistics follow from the decisions; check the
    # integer-valued ones exactly.
    assert ref.stats.task_count == fast.stats.task_count
    assert ref.stats.migrations == fast.stats.migrations
    assert ref.stats.steals == fast.stats.steals


# ---------------------------------------------------------------------------
# workload generators


def wide_graph(n: int = 150) -> TaskGraph:
    """Independent tasks with randomized demands in every dimension."""
    g = TaskGraph("wide")
    rng = random.Random(7)
    for i in range(n):
        g.add(
            f"t{i}",
            TaskCost(
                flops=rng.uniform(1e5, 1e7),
                bytes_l1=rng.uniform(1e3, 1e5),
                bytes_l2=rng.uniform(1e3, 1e5),
                bytes_l3=rng.uniform(1e2, 1e4),
                bytes_dram=rng.uniform(1e2, 1e6),
            ),
        )
    return g


def random_dag(seed: int, n: int = 250) -> TaskGraph:
    """A randomized DAG exercising every scheduler feature: mixed
    dependencies, zero-cost joins, single-dimension demands, tied
    tasks, and creator affinity."""
    rng = random.Random(seed)
    g = TaskGraph(f"rand{seed}")
    for i in range(n):
        deps = sorted({rng.randrange(i) for _ in range(rng.randrange(0, 4))}) if i else []
        roll = rng.random()
        if roll < 0.10:
            cost = TaskCost()  # zero-cost join/barrier
        elif roll < 0.20:
            # Single-dimension demand (exercises trivial alive counts).
            dim = rng.choice(
                ["flops", "bytes_l1", "bytes_l2", "bytes_l3", "bytes_dram"]
            )
            cost = TaskCost(**{dim: rng.uniform(1e2, 1e6)})
        else:
            cost = TaskCost(
                flops=rng.uniform(0, 1e6),
                bytes_l1=rng.uniform(0, 1e4),
                bytes_l2=rng.uniform(0, 1e4),
                bytes_l3=rng.uniform(0, 1e4),
                bytes_dram=rng.uniform(0, 1e5),
            )
        created_by = rng.randrange(i) if i and rng.random() < 0.3 else None
        g.add(
            f"t{i}",
            cost,
            deps=deps,
            untied=rng.random() < 0.5,
            created_by=created_by,
        )
    return g


def strassen_graph(machine) -> TaskGraph:
    """A real algorithm lowering (nontrivial structure + cost mix)."""
    from repro.algorithms import StrassenWinograd

    return StrassenWinograd(machine).build(256, 4, seed=0, execute=False).graph


# ---------------------------------------------------------------------------
# tests


def _run_both(machine, graph, policy, threads):
    ref = Scheduler(machine, threads, policy, execute=False, engine="reference").run(graph)
    fast = Scheduler(machine, threads, policy, execute=False, engine="fast").run(graph)
    return ref, fast


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("threads", [1, 2, 3, 4])
def test_differential_wide(machine, policy, threads):
    ref, fast = _run_both(machine, wide_graph(), policy, threads)
    assert_schedules_match(ref, fast)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_differential_random_dag(machine, policy, seed):
    graph = random_dag(seed)
    for threads in (1, 2, 3, 4):
        ref, fast = _run_both(machine, graph, policy, threads)
        assert_schedules_match(ref, fast)


@pytest.mark.parametrize("policy", POLICIES)
def test_differential_dual_socket(policy):
    """Dual-socket machine: shared-dim repricing crosses sockets
    (exercises the multi-socket refresh path)."""
    machine = dual_socket_haswell()
    graph = random_dag(11, n=200)
    for threads in (2, 4, 8):
        ref, fast = _run_both(machine, graph, policy, threads)
        assert_schedules_match(ref, fast)


@pytest.mark.parametrize("policy", POLICIES)
def test_differential_many_cores_numpy_path(policy):
    """>=96 seat entries flips the fast kernel onto its numpy event
    path; the identity must hold there too."""
    machine = generic_smp(cores=24)
    graph = random_dag(5, n=300)
    ref, fast = _run_both(machine, graph, policy, 24)
    assert_schedules_match(ref, fast)


@pytest.mark.parametrize("policy", POLICIES)
def test_differential_strassen(machine, policy):
    graph = strassen_graph(machine)
    ref, fast = _run_both(machine, graph, policy, 4)
    assert_schedules_match(ref, fast)


def test_differential_zero_cost_only(machine):
    """Pure join graphs (every task zero-cost) finish at t=0 on both
    engines with identical records."""
    g = TaskGraph("zeros")
    for i in range(20):
        deps = [i - 1] if i else []
        g.add(f"z{i}", TaskCost(), deps=deps)
    for policy in POLICIES:
        ref, fast = _run_both(machine, g, policy, 2)
        assert_schedules_match(ref, fast)
        assert fast.makespan == 0.0


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("store", ["list", "numpy"])
def test_event_store_pinned_both_sides_of_threshold(machine, policy, store, monkeypatch):
    """Pin the texp_adj store to each implementation on the *same*
    cases and demand the reference identity from both.

    The fast kernel keeps its event store as a plain Python list below
    :data:`_NUMPY_THRESHOLD` seat entries and as a numpy array above
    it.  The two stores must be pure implementation detail: pinning the
    threshold so the 4-core paper machine (20 entries, normally list)
    runs the numpy step, and a 24-core machine (120 entries, normally
    numpy) runs the list step, must not change a single decision.
    """
    from repro.runtime import fastpath

    monkeypatch.setattr(
        fastpath, "_NUMPY_THRESHOLD", 0 if store == "numpy" else 10_000
    )
    for m in (machine, generic_smp(cores=24)):
        graph = random_dag(17, n=150)
        ref, fast = _run_both(m, graph, policy, m.cores)
        assert_schedules_match(ref, fast)


@pytest.mark.parametrize("policy", ["fifo", "steal"])
def test_event_store_crossover_is_invisible(policy, monkeypatch):
    """Straddle the real threshold: 19 threads (95 entries) takes the
    list step, 20 threads (100 entries) the numpy step — and pinning
    the *other* store onto the same machine is bit-identical, so the
    crossover cannot be observed in any schedule."""
    from repro.runtime import fastpath

    assert fastpath._NUMPY_THRESHOLD == 96
    graph = random_dag(23, n=200)
    for cores in (19, 20):  # 95 / 100 seat entries
        m = generic_smp(cores=cores)
        natural = Scheduler(
            m, cores, policy, execute=False, engine="fast"
        ).run(graph)
        flipped_threshold = 10_000 if cores * 5 >= 96 else 0
        monkeypatch.setattr(fastpath, "_NUMPY_THRESHOLD", flipped_threshold)
        flipped = Scheduler(
            m, cores, policy, execute=False, engine="fast"
        ).run(graph)
        monkeypatch.setattr(fastpath, "_NUMPY_THRESHOLD", 96)
        assert natural.makespan == flipped.makespan
        assert natural.intervals == flipped.intervals
        assert natural.stats == flipped.stats
        for a, b in zip(natural.records, flipped.records):
            assert (a.tid, a.core, a.start, a.end) == (b.tid, b.core, b.start, b.end)


def test_graph_plan_cache_reused_and_extended(machine):
    """The per-graph plan cache survives repeat runs and graph growth."""
    from repro.runtime.fastpath import _PLAN_ATTR

    g = wide_graph(30)
    sched = Scheduler(machine, 2, execute=False, engine="fast")
    sched.run(g)
    gp = getattr(g, _PLAN_ATTR)
    assert len(gp.plans) == 30
    sched.run(g)
    assert getattr(g, _PLAN_ATTR) is gp  # reused, not rebuilt

    g.add("late", TaskCost(flops=1e6), deps=[0])
    ref = Scheduler(machine, 2, execute=False, engine="reference").run(g)
    fast = sched.run(g)
    assert getattr(g, _PLAN_ATTR) is gp and len(gp.plans) == 31  # extended
    assert_schedules_match(ref, fast)
