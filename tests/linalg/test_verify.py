"""Verification reports."""

import numpy as np
import pytest

from repro.linalg.dense import random_matrix
from repro.linalg.fastmm import winograd_product
from repro.linalg.verify import verify_matmul
from repro.util.errors import ValidationError


def test_exact_product_verifies():
    a = random_matrix(32, seed=0)
    b = random_matrix(32, seed=1)
    report = verify_matmul(a, b, a @ b, variant="classical")
    assert report.ok
    assert report.abs_error <= report.bound


def test_winograd_product_verifies_under_its_bound():
    a = random_matrix(128, seed=2)
    b = random_matrix(128, seed=3)
    c = winograd_product(a, b, 32)
    report = verify_matmul(a, b, c, variant="winograd", cutoff=32)
    assert report.ok


def test_corrupted_result_fails():
    a = random_matrix(32, seed=4)
    b = random_matrix(32, seed=5)
    c = a @ b
    c[0, 0] += 1.0
    report = verify_matmul(a, b, c)
    assert not report.ok
    assert report.abs_error >= 1.0


def test_shape_mismatch():
    with pytest.raises(ValidationError):
        verify_matmul(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((3, 3)))


def test_repr_mentions_verdict():
    a = random_matrix(8, seed=6)
    report = verify_matmul(a, a, a @ a)
    assert "ok" in repr(report)
