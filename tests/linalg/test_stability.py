"""Stability bounds (Higham-style coefficients)."""

import math

import numpy as np
import pytest

from repro.linalg.dense import random_matrix
from repro.linalg.stability import (
    UNIT_ROUNDOFF,
    classical_error_coefficient,
    error_bound,
    max_norm,
    relative_error,
    strassen_error_coefficient,
    winograd_error_coefficient,
)
from repro.util.errors import ValidationError


def test_unit_roundoff_double():
    assert UNIT_ROUNDOFF == pytest.approx(2.0**-53)


def test_classical_coefficient():
    assert classical_error_coefficient(100) == 100**2 + 100


def test_strassen_reduces_to_leaf_at_cutoff():
    # n == n0: (n/n0)^x = 1 -> coefficient = n0^2 + 5n0 - 5n = n^2.
    assert strassen_error_coefficient(64, 64) == pytest.approx(64**2)
    assert winograd_error_coefficient(64, 64) == pytest.approx(64**2)


def test_coefficients_grow_with_recursion():
    shallow = strassen_error_coefficient(128, 64)
    deep = strassen_error_coefficient(1024, 64)
    assert deep > shallow > classical_error_coefficient(128)


def test_winograd_grows_faster_than_strassen():
    # log2(18) > log2(12): longer addition chains compound roundoff.
    n, n0 = 4096, 64
    assert winograd_error_coefficient(n, n0) > strassen_error_coefficient(n, n0)


def test_growth_exponents():
    n0 = 64
    ratio_s = strassen_error_coefficient(4 * n0, n0) / strassen_error_coefficient(
        2 * n0, n0
    )
    # Doubling n roughly multiplies the leading term by 12.
    assert ratio_s == pytest.approx(12.0, rel=0.15)
    ratio_w = winograd_error_coefficient(4 * n0, n0) / winograd_error_coefficient(
        2 * n0, n0
    )
    assert ratio_w == pytest.approx(18.0, rel=0.15)


def test_cutoff_above_n_rejected():
    with pytest.raises(ValidationError):
        strassen_error_coefficient(32, 64)


def test_max_norm():
    assert max_norm(np.array([[1.0, -5.0], [2.0, 3.0]])) == 5.0
    assert max_norm(np.zeros((0, 0))) == 0.0


def test_relative_error():
    ref = np.array([[2.0, 0.0], [0.0, 2.0]])
    approx = ref + 0.02
    assert relative_error(approx, ref) == pytest.approx(0.01)
    assert relative_error(np.ones((2, 2)), np.zeros((2, 2))) == 1.0


def test_error_bound_scales_with_operands():
    a = random_matrix(64, seed=0)
    assert error_bound(2 * a, a) == pytest.approx(2 * error_bound(a, a))


def test_error_bound_variants_ordered():
    a = random_matrix(256, seed=0)
    b = random_matrix(256, seed=1)
    assert (
        error_bound(a, b, "classical")
        < error_bound(a, b, "strassen")
        < error_bound(a, b, "winograd")
    )


def test_error_bound_unknown_variant():
    a = random_matrix(8, seed=0)
    with pytest.raises(ValidationError):
        error_bound(a, a, "magic")
