"""Strassen-family numerics against numpy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg.dense import random_matrix
from repro.linalg.fastmm import (
    classic_strassen_product,
    recursion_depth,
    winograd_product,
    winograd_product_peeled,
)
from repro.linalg.stability import error_bound
from repro.util.errors import ValidationError


@pytest.mark.parametrize("fn", [winograd_product, classic_strassen_product])
@pytest.mark.parametrize("n,cutoff", [(8, 2), (32, 8), (64, 16), (128, 64), (256, 64)])
def test_matches_numpy_within_bound(fn, n, cutoff):
    a = random_matrix(n, seed=n)
    b = random_matrix(n, seed=n + 1)
    c = fn(a, b, cutoff)
    variant = "winograd" if fn is winograd_product else "strassen"
    bound = error_bound(a, b, variant=variant, cutoff=cutoff)
    assert np.max(np.abs(c - a @ b)) <= bound


@pytest.mark.parametrize("fn", [winograd_product, classic_strassen_product])
def test_cutoff_at_or_above_n_is_plain_matmul(fn):
    a = random_matrix(24, seed=0)
    b = random_matrix(24, seed=1)
    assert np.array_equal(fn(a, b, cutoff=24), a @ b)


@pytest.mark.parametrize("fn", [winograd_product, classic_strassen_product])
def test_identity_multiplication(fn):
    a = random_matrix(64, seed=3)
    eye = np.eye(64)
    assert np.allclose(fn(a, eye, 16), a)
    assert np.allclose(fn(eye, a, 16), a)


def test_non_power_of_two_above_cutoff_rejected():
    a = random_matrix(48, seed=0)
    with pytest.raises(ValidationError):
        winograd_product(a, a, cutoff=16)


def test_shape_mismatch_rejected():
    with pytest.raises(ValidationError):
        winograd_product(np.zeros((4, 4)), np.zeros((8, 8)), 2)


def test_recursion_depth():
    assert recursion_depth(512, 64) == 3
    assert recursion_depth(64, 64) == 0
    assert recursion_depth(4096, 64) == 6
    assert recursion_depth(96, 32) == 2  # 96 -> 48 -> 24 <= 32


def test_recursion_depth_odd_rejected():
    with pytest.raises(ValidationError):
        recursion_depth(100, 16)  # 100 -> 50 -> 25 odd above cutoff


def test_winograd_and_classic_agree():
    a = random_matrix(128, seed=9)
    b = random_matrix(128, seed=10)
    cw = winograd_product(a, b, 32)
    cs = classic_strassen_product(a, b, 32)
    assert np.allclose(cw, cs, atol=1e-9)


@settings(max_examples=10, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=6),
    cutoff_pow=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
)
def test_winograd_property(k, cutoff_pow, seed):
    n = 2**k
    cutoff = max(1, 2**min(cutoff_pow, k))
    a = random_matrix(n, seed=seed)
    b = random_matrix(n, seed=seed + 1)
    c = winograd_product(a, b, cutoff)
    assert np.max(np.abs(c - a @ b)) <= error_bound(a, b, "winograd", cutoff)


class TestPeeling:
    """Dynamic peeling for non-power-of-two sizes."""

    @pytest.mark.parametrize("n", [7, 30, 45, 63, 100, 129])
    def test_odd_and_arbitrary_sizes(self, n):
        a = random_matrix(n, seed=n)
        b = random_matrix(n, seed=n + 1)
        c = winograd_product_peeled(a, b, cutoff=8)
        assert np.allclose(c, a @ b, atol=1e-10 * n)

    def test_matches_padded_variant_on_powers_of_two(self):
        a = random_matrix(64, seed=1)
        b = random_matrix(64, seed=2)
        padded = winograd_product(a, b, 16)
        peeled = winograd_product_peeled(a, b, 16)
        assert np.allclose(padded, peeled, atol=1e-11)

    def test_below_cutoff_plain(self):
        a = random_matrix(10, seed=3)
        b = random_matrix(10, seed=4)
        assert np.array_equal(winograd_product_peeled(a, b, 16), a @ b)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            winograd_product_peeled(np.zeros((4, 4)), np.zeros((6, 6)), 2)
