"""Dense helpers."""

import numpy as np
import pytest

from repro.linalg.dense import (
    join_quadrants,
    matmul_flops,
    pad_to_power_of_two,
    random_matrix,
    require_square,
    split_quadrants,
    working_set_bytes,
)
from repro.util.errors import ValidationError


def test_random_matrix_deterministic():
    a = random_matrix(16, seed=7)
    b = random_matrix(16, seed=7)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, random_matrix(16, seed=8))


def test_random_matrix_range_and_dtype():
    a = random_matrix(32, seed=0, lo=-2, hi=2)
    assert a.dtype == np.float64
    assert a.min() >= -2 and a.max() < 2


def test_require_square():
    require_square(np.zeros((3, 3)))
    with pytest.raises(ValidationError):
        require_square(np.zeros((3, 4)))
    with pytest.raises(ValidationError):
        require_square(np.zeros(3))


def test_split_quadrants_views_not_copies():
    a = np.arange(16.0).reshape(4, 4)
    a11, a12, a21, a22 = split_quadrants(a)
    assert a11.base is not None  # view, not copy
    a11[0, 0] = 99.0
    assert a[0, 0] == 99.0


def test_split_quadrant_contents():
    a = np.arange(16.0).reshape(4, 4)
    a11, a12, a21, a22 = split_quadrants(a)
    assert np.array_equal(a11, [[0, 1], [4, 5]])
    assert np.array_equal(a22, [[10, 11], [14, 15]])


def test_split_odd_rejected():
    with pytest.raises(ValidationError):
        split_quadrants(np.zeros((3, 3)))


def test_join_inverts_split():
    a = random_matrix(8, seed=1)
    assert np.array_equal(join_quadrants(*split_quadrants(a)), a)


def test_join_shape_mismatch():
    with pytest.raises(ValidationError):
        join_quadrants(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((3, 3)))


def test_pad_to_power_of_two():
    a = random_matrix(12, seed=0)
    padded, n = pad_to_power_of_two(a)
    assert n == 12
    assert padded.shape == (16, 16)
    assert np.array_equal(padded[:12, :12], a)
    assert np.all(padded[12:, :] == 0)


def test_pad_noop_for_power_of_two():
    a = random_matrix(16, seed=0)
    padded, n = pad_to_power_of_two(a)
    assert padded is a and n == 16


def test_padding_preserves_product():
    a = random_matrix(12, seed=1)
    b = random_matrix(12, seed=2)
    pa, _ = pad_to_power_of_two(a)
    pb, _ = pad_to_power_of_two(b)
    assert np.allclose((pa @ pb)[:12, :12], a @ b)


def test_matmul_flops():
    assert matmul_flops(512) == 2 * 512**3


def test_working_set_bytes():
    # The paper: 3 x 512^2 doubles fit the 8 MB LLC.
    assert working_set_bytes(512) == 3 * 512 * 512 * 8
    assert working_set_bytes(512) < 8 * 2**20
    assert working_set_bytes(1024) > 8 * 2**20
