"""Synthetic sparse patterns."""

import numpy as np
import pytest

from repro.sparse.generators import banded, power_law, uniform_random
from repro.util.errors import ValidationError


class TestBanded:
    def test_band_structure(self):
        m = banded(16, 2, seed=0)
        d = m.to_dense()
        rows, cols = np.nonzero(d)
        assert np.all(np.abs(rows - cols) <= 2)

    def test_band_is_full(self):
        m = banded(10, 1, seed=0)
        # Tridiagonal: 3n - 2 entries.
        assert m.nnz == 3 * 10 - 2

    def test_diagonal_only(self):
        assert banded(8, 0, seed=0).nnz == 8

    def test_bandwidth_validation(self):
        with pytest.raises(ValidationError):
            banded(8, 8)

    def test_deterministic(self):
        a = banded(8, 1, seed=5)
        b = banded(8, 1, seed=5)
        assert np.array_equal(a.values, b.values)


class TestUniformRandom:
    def test_density_approximate(self):
        m = uniform_random(64, 0.1, seed=1)
        target = 0.1 * 64 * 64
        assert 0.5 * target <= m.nnz <= 1.5 * target

    def test_no_empty_rows(self):
        m = uniform_random(32, 0.02, seed=2)
        d = m.to_dense()
        assert np.all((d != 0).sum(axis=1) >= 1)

    def test_density_bounds(self):
        with pytest.raises(ValidationError):
            uniform_random(8, 1.5)


class TestPowerLaw:
    def test_skewed_degrees(self):
        m = power_law(128, avg_degree=6, alpha=1.8, seed=3)
        degrees = np.bincount(m.rows, minlength=128)
        assert degrees.max() >= 3 * np.median(degrees)

    def test_every_row_nonempty(self):
        m = power_law(64, avg_degree=4, seed=4)
        assert np.all(np.bincount(m.rows, minlength=64) >= 1)

    def test_alpha_validation(self):
        with pytest.raises(ValidationError):
            power_law(16, 4, alpha=1.0)

    def test_defeats_ell(self):
        """The skew makes ELL pad heavily — why storage choice matters."""
        from repro.sparse.formats import ELLMatrix

        m = ELLMatrix.from_coo(power_law(128, avg_degree=4, alpha=1.6, seed=5))
        assert m.pad_ratio > 0.4
