"""SpMV lowering and cost models."""

import numpy as np
import pytest

from repro.sparse.formats import BSRMatrix, CSRMatrix
from repro.sparse.generators import banded, uniform_random
from repro.sparse.spmv import build_spmv_graph, row_chunks, spmv_chunk_cost
from repro.sparse.study import convert
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def pattern():
    return banded(256, 4, seed=1)


class TestRowChunks:
    def test_partition(self, pattern):
        csr = CSRMatrix.from_coo(pattern)
        chunks = row_chunks(csr, 4)
        assert chunks[0][0] == 0
        assert chunks[-1][1] == 256
        assert sum(b - a for a, b in chunks) == 256

    def test_bsr_alignment(self, pattern):
        bsr = BSRMatrix.from_coo(pattern, 4)
        for a, b in row_chunks(bsr, 3):
            assert a % 4 == 0

    def test_more_chunks_than_rows(self):
        csr = CSRMatrix.from_coo(banded(4, 1, seed=0))
        chunks = row_chunks(csr, 16)
        assert sum(b - a for a, b in chunks) == 4


class TestChunkCost:
    def test_flops_two_per_nnz(self, machine, pattern):
        csr = CSRMatrix.from_coo(pattern)
        cost = spmv_chunk_cost(csr, machine, 0, 256)
        assert cost.flops == pytest.approx(2 * csr.nnz)

    def test_memory_bound(self, machine, pattern):
        csr = CSRMatrix.from_coo(pattern)
        cost = spmv_chunk_cost(csr, machine, 0, 256)
        # ~2 flops per 12+ storage bytes: far below the machine balance
        # of ~20 flop/DRAM-byte, i.e. hopelessly bandwidth-bound.
        assert cost.arithmetic_intensity() < 1.0

    def test_ell_padding_costs_bytes(self, machine):
        from repro.sparse.generators import power_law

        pat = power_law(256, avg_degree=4, alpha=1.6, seed=2)
        csr_cost = spmv_chunk_cost(convert(pat, "csr"), machine, 0, 256)
        ell_cost = spmv_chunk_cost(convert(pat, "ell"), machine, 0, 256)
        assert ell_cost.bytes_l1 > 2 * csr_cost.bytes_l1

    def test_banded_gather_locality(self, machine):
        """A band touches few distinct columns per chunk; random
        patterns touch many — the gather model must see it."""
        band = convert(banded(256, 2, seed=0), "csr")
        rand = convert(uniform_random(256, 0.02, seed=0), "csr")
        band_cost = spmv_chunk_cost(band, machine, 0, 64)
        rand_cost = spmv_chunk_cost(rand, machine, 0, 64)
        band_gather = band_cost.bytes_dram
        # not a strict apples-to-apples, but the band's distinct-column
        # count per chunk is far lower.
        assert band_gather < rand_cost.bytes_dram * 2


class TestBuildGraph:
    def test_numerics_verified(self, machine, pattern):
        csr = CSRMatrix.from_coo(pattern)
        build = build_spmv_graph(csr, machine, threads=4, repeats=2)
        from repro.sim import Engine

        Engine(machine).run(build.graph, threads=4)
        assert build.verify() < 1e-10

    def test_sweeps_are_chained(self, machine, pattern):
        csr = CSRMatrix.from_coo(pattern)
        build = build_spmv_graph(csr, machine, threads=2, repeats=3, execute=False)
        joins = [t for t in build.graph if t.name.endswith("/join")]
        assert len(joins) == 3

    def test_chunk_count(self, machine, pattern):
        csr = CSRMatrix.from_coo(pattern)
        build = build_spmv_graph(csr, machine, threads=4, repeats=1, execute=False)
        chunks = [t for t in build.graph if "rows[" in t.name]
        assert len(chunks) == 4

    def test_all_formats_execute(self, machine, pattern):
        from repro.sim import Engine

        for fmt in ("csr", "coo", "ell", "bsr"):
            m = convert(pattern, fmt)
            build = build_spmv_graph(m, machine, threads=2, repeats=1)
            Engine(machine).run(build.graph, threads=2)
            assert build.verify() < 1e-10
