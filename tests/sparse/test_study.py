"""Sparse EP study."""

import pytest

from repro.sparse.generators import banded
from repro.sparse.study import SparseEPStudy, convert
from repro.util.errors import ConfigurationError, ValidationError


@pytest.fixture(scope="module")
def result(machine):
    pattern = banded(256, 4, seed=7)
    return SparseEPStudy(
        machine, pattern, threads=(1, 2, 4), repeats=3
    ).run()


def test_all_cells_present(result):
    assert len(result.runs) == 5 * 3


def test_bsr_wins_on_banded(result):
    """Blocked storage amortizes index overhead on a band — lowest
    energy per sweep."""
    j = {fmt: result.energy_per_sweep_j(fmt, 4) for fmt in result.formats}
    assert j["bsr"] <= min(j["csr"], j["coo"], j["ell"]) * 1.05


def test_coo_worst_storage(result):
    assert result.storage_bytes["coo"] >= max(
        result.storage_bytes[f] for f in ("csr", "bsr")
    )


def test_spmv_scales_sublinearly(result):
    """SpMV is bandwidth-bound: 4 threads nowhere near 4x (per-chunk
    gather duplication can even make it fractionally slower)."""
    for fmt in result.formats:
        speedup = result.time_s(fmt, 1) / result.time_s(fmt, 4)
        assert 0.85 <= speedup < 3.0


def test_scaling_curves_sublinear(result):
    for fmt in result.formats:
        pts = result.scaling_curve(fmt)
        assert pts[-1].s < pts[-1].parallelism  # below the line


def test_summary_table(result):
    table = result.summary_table()
    assert [row[0] for row in table.rows] == ["CSR", "COO", "ELL", "BSR", "DIA"]
    assert table.headers[0] == "Format"


def test_unknown_format_rejected(machine):
    with pytest.raises(ConfigurationError):
        convert(banded(16, 1), "jds")


def test_missing_run(result):
    with pytest.raises(ValidationError):
        result.measurement("csr", 999)


def test_power_rises_with_threads(result):
    for fmt in result.formats:
        assert result.power_w(fmt, 4) > result.power_w(fmt, 1)


class TestSpmmKernel:
    def test_spmm_study_runs_and_verifies(self, machine):
        pattern = banded(128, 2, seed=8)
        result = SparseEPStudy(
            machine, pattern, threads=(1, 4), repeats=2, kernel="spmm", k=8
        ).run()
        assert len(result.runs) == 5 * 2

    def test_spmm_scales_better_than_spmv(self, machine):
        """Wide right-hand sides amortize the storage stream: SpMM
        leaves the bandwidth wall SpMV sits on."""
        pattern = banded(512, 4, seed=9)
        spmv = SparseEPStudy(
            machine, pattern, formats=("csr",), threads=(1, 4),
            repeats=2, verify=False,
        ).run()
        spmm = SparseEPStudy(
            machine, pattern, formats=("csr",), threads=(1, 4),
            repeats=2, verify=False, kernel="spmm", k=64,
        ).run()
        spmv_speedup = spmv.time_s("csr", 1) / spmv.time_s("csr", 4)
        spmm_speedup = spmm.time_s("csr", 1) / spmm.time_s("csr", 4)
        assert spmm_speedup > spmv_speedup

    def test_unknown_kernel_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            SparseEPStudy(machine, banded(16, 1), kernel="spgemm")
