"""SpMM kernels, costs and lowering."""

import numpy as np
import pytest

from repro.sim import Engine
from repro.sparse.formats import BSRMatrix, COOMatrix, CSRMatrix, ELLMatrix
from repro.sparse.generators import banded, power_law, uniform_random
from repro.sparse.spmm import build_spmm_graph, spmm, spmm_chunk_cost, spmm_range
from repro.sparse.spmv import spmv_chunk_cost
from repro.sparse.study import convert
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def pattern():
    return banded(128, 3, seed=9)


ALL = ["coo", "csr", "ell", "bsr"]


@pytest.mark.parametrize("fmt", ALL)
def test_spmm_matches_dense(pattern, fmt):
    m = convert(pattern, fmt)
    rng = np.random.default_rng(0)
    b = rng.uniform(-1, 1, size=(128, 5))
    assert np.allclose(spmm(m, b), m.to_dense() @ b, atol=1e-12)


@pytest.mark.parametrize("fmt", ALL)
def test_spmm_range_partition(pattern, fmt):
    m = convert(pattern, fmt)
    rng = np.random.default_rng(1)
    b = rng.uniform(-1, 1, size=(128, 3))
    c = np.zeros((128, 3))
    spmm_range(m, 0, 64, b, c)
    spmm_range(m, 64, 128, b, c)
    assert np.allclose(c, m.to_dense() @ b, atol=1e-12)


def test_spmm_k_one_matches_spmv(pattern):
    m = convert(pattern, "csr")
    rng = np.random.default_rng(2)
    x = rng.uniform(-1, 1, size=128)
    c = spmm(m, x[:, None])
    assert np.allclose(c[:, 0], m.spmv(x), atol=1e-12)


def test_spmm_handles_empty_rows():
    d = np.zeros((8, 8))
    d[0, 3] = 2.0
    d[7, 7] = 1.0
    for fmt in ALL:
        m = convert(COOMatrix.from_dense(d), fmt)
        b = np.ones((8, 4))
        assert np.allclose(spmm(m, b), d @ b)


def test_b_shape_validation(pattern):
    m = convert(pattern, "csr")
    with pytest.raises(ValidationError):
        spmm(m, np.ones((64, 3)))
    with pytest.raises(ValidationError):
        spmm(m, np.ones(128))


def test_bsr_alignment(pattern):
    m = convert(pattern, "bsr")
    b = np.ones((128, 2))
    c = np.zeros((128, 2))
    with pytest.raises(ValidationError):
        spmm_range(m, 0, 63, b, c)


class TestCost:
    def test_flops_scale_with_k(self, machine, pattern):
        m = convert(pattern, "csr")
        c1 = spmm_chunk_cost(m, machine, 0, 128, k=1)
        c8 = spmm_chunk_cost(m, machine, 0, 128, k=8)
        assert c8.flops == pytest.approx(8 * c1.flops)

    def test_storage_stream_amortized(self, machine, pattern):
        """The index/value stream is k-independent: intensity grows
        with k — SpMM's whole point."""
        m = convert(pattern, "csr")
        ai = [
            spmm_chunk_cost(m, machine, 0, 128, k=k).arithmetic_intensity()
            for k in (1, 8, 64)
        ]
        assert ai[0] < ai[1] < ai[2]

    def test_k1_close_to_spmv_traffic(self, machine, pattern):
        m = convert(pattern, "csr")
        mm = spmm_chunk_cost(m, machine, 0, 128, k=1)
        mv = spmv_chunk_cost(m, machine, 0, 128)
        assert mm.bytes_l1 == pytest.approx(mv.bytes_l1, rel=0.05)


class TestBuild:
    def test_executes_and_verifies(self, machine, pattern):
        for fmt in ALL:
            m = convert(pattern, fmt)
            build = build_spmm_graph(m, machine, threads=3, k=4, repeats=2)
            Engine(machine).run(build.graph, threads=3)
            assert build.verify() < 1e-10

    def test_spmm_scales_better_than_spmv(self, machine):
        """With a wide k the kernel leaves the bandwidth wall and
        starts scaling with threads."""
        from repro.sparse.spmv import build_spmv_graph

        pat = uniform_random(512, 0.02, seed=3)
        m = convert(pat, "csr")
        eng = Engine(machine)

        def time_at(builder, threads, **kw):
            b = builder(m, machine, threads, execute=False, **kw)
            return eng.run(b.graph, threads, execute=False).elapsed_s

        spmv_speedup = time_at(build_spmv_graph, 1) / time_at(build_spmv_graph, 4)
        spmm_speedup = time_at(build_spmm_graph, 1, k=64) / time_at(
            build_spmm_graph, 4, k=64
        )
        assert spmm_speedup > spmv_speedup
