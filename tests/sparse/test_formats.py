"""Sparse storage schemes: roundtrips, SpMV correctness, accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse.formats import BSRMatrix, COOMatrix, CSRMatrix, DIAMatrix, ELLMatrix
from repro.util.errors import ValidationError


def dense_fixture(seed=0, n=12, density=0.3):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, size=(n, n))
    a[rng.uniform(size=(n, n)) > density] = 0.0
    np.fill_diagonal(a, 1.0)  # no empty rows/cols corner for baseline
    return a


ALL_FORMATS = [
    ("coo", lambda d: COOMatrix.from_dense(d)),
    ("csr", lambda d: CSRMatrix.from_dense(d)),
    ("ell", lambda d: ELLMatrix.from_dense(d)),
    ("bsr", lambda d: BSRMatrix.from_dense(d, 4)),
    ("dia", lambda d: DIAMatrix.from_dense(d)),
]


@pytest.mark.parametrize("name,conv", ALL_FORMATS)
def test_dense_roundtrip(name, conv):
    d = dense_fixture()
    m = conv(d)
    assert np.allclose(m.to_dense(), d)


@pytest.mark.parametrize("name,conv", ALL_FORMATS)
def test_spmv_matches_dense(name, conv):
    d = dense_fixture(seed=3)
    m = conv(d)
    x = np.random.default_rng(1).uniform(-1, 1, size=d.shape[1])
    assert np.allclose(m.spmv(x), d @ x)


@pytest.mark.parametrize("name,conv", ALL_FORMATS)
def test_spmv_range_covers_rows(name, conv):
    d = dense_fixture(seed=5)
    m = conv(d)
    x = np.random.default_rng(2).uniform(-1, 1, size=d.shape[1])
    y = np.zeros(d.shape[0])
    m.spmv_range(0, 4, x, y)
    m.spmv_range(4, 8, x, y)
    m.spmv_range(8, 12, x, y)
    assert np.allclose(y, d @ x)


@pytest.mark.parametrize("name,conv", ALL_FORMATS)
def test_to_coo_roundtrip(name, conv):
    d = dense_fixture(seed=7)
    m = conv(d)
    assert np.allclose(m.to_coo().to_dense(), d)


@pytest.mark.parametrize("name,conv", ALL_FORMATS)
def test_storage_bytes_positive_and_split(name, conv):
    m = conv(dense_fixture())
    assert m.storage_bytes() == m.index_bytes() + m.value_bytes()
    assert m.value_bytes() >= m.nnz * 8


class TestCOO:
    def test_sorted_and_deduped(self):
        m = COOMatrix((3, 3), [2, 0, 1], [0, 1, 2], [3.0, 1.0, 2.0])
        assert list(m.rows) == [0, 1, 2]

    def test_duplicates_rejected(self):
        with pytest.raises(ValidationError):
            COOMatrix((2, 2), [0, 0], [1, 1], [1.0, 2.0])

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValidationError):
            COOMatrix((2, 2), [0], [5], [1.0])

    def test_empty_matrix(self):
        m = COOMatrix((4, 4), [], [], [])
        assert m.nnz == 0
        assert np.allclose(m.spmv(np.ones(4)), 0)


class TestCSR:
    def test_empty_rows_handled(self):
        # Row 1 empty: the classic reduceat trap.
        d = np.zeros((4, 4))
        d[0, 0] = 1.0
        d[2, 3] = 2.0
        d[3, 0] = 3.0
        m = CSRMatrix.from_dense(d)
        x = np.arange(4.0) + 1
        assert np.allclose(m.spmv(x), d @ x)
        assert m.spmv(x)[1] == 0.0

    def test_indptr_validation(self):
        with pytest.raises(ValidationError):
            CSRMatrix((2, 2), [0, 1], [0], [1.0])  # wrong indptr length
        with pytest.raises(ValidationError):
            CSRMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 2.0])  # decreasing

    def test_row_lengths(self):
        d = dense_fixture()
        m = CSRMatrix.from_dense(d)
        assert np.array_equal(m.row_lengths(), (d != 0).sum(axis=1))


class TestELL:
    def test_padding_accounting(self):
        d = np.zeros((4, 4))
        d[0, :] = 1.0  # row of length 4
        d[1, 0] = 1.0
        d[2, 0] = 1.0
        d[3, 0] = 1.0
        m = ELLMatrix.from_dense(d)
        assert m.width == 4
        assert m.nnz == 7
        assert m.pad_ratio == pytest.approx(1 - 7 / 16)

    def test_padded_values_cost_storage(self):
        d = np.eye(8)
        d[0, :] = 1.0
        skewed = ELLMatrix.from_dense(d)
        uniform = ELLMatrix.from_dense(np.eye(8))
        assert skewed.value_bytes() > uniform.value_bytes() * 4

    def test_empty_rows(self):
        d = np.zeros((3, 3))
        d[0, 1] = 2.0
        m = ELLMatrix.from_dense(d)
        x = np.ones(3)
        assert np.allclose(m.spmv(x), d @ x)


class TestBSR:
    def test_block_alignment_required(self):
        with pytest.raises(ValidationError):
            BSRMatrix.from_dense(np.eye(10), 4)

    def test_fill_ratio(self):
        d = np.zeros((8, 8))
        d[0, 0] = 1.0  # one element -> one 4x4 block with 15 fill zeros
        m = BSRMatrix.from_dense(d, 4)
        assert m.stored_values == 16
        assert m.fill_ratio == pytest.approx(15 / 16)

    def test_block_diagonal_is_efficient(self):
        d = np.kron(np.eye(4), np.ones((4, 4)))
        m = BSRMatrix.from_dense(d, 4)
        assert m.fill_ratio == 0.0
        assert m.index_bytes() < CSRMatrix.from_dense(d).index_bytes()

    def test_spmv_range_must_align(self):
        m = BSRMatrix.from_dense(np.eye(8), 4)
        y = np.zeros(8)
        with pytest.raises(ValidationError):
            m.spmv_range(0, 6, np.ones(8), y)

    def test_empty_block_rows(self):
        d = np.zeros((8, 8))
        d[6, 7] = 5.0
        m = BSRMatrix.from_dense(d, 4)
        x = np.ones(8)
        assert np.allclose(m.spmv(x), d @ x)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10000))
def test_property_all_formats_agree(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 17)) * 4  # BSR-alignable
    d = rng.uniform(-1, 1, size=(n, n))
    d[rng.uniform(size=(n, n)) > 0.25] = 0.0
    x = rng.uniform(-1, 1, size=n)
    ref = d @ x
    for _, conv in ALL_FORMATS:
        m = conv(d)
        assert np.allclose(m.spmv(x), ref, atol=1e-12)
        assert m.nnz == int(np.count_nonzero(d))


class TestDIA:
    def test_offsets_and_width(self):
        d = np.zeros((6, 6))
        np.fill_diagonal(d, 2.0)
        d[0, 1] = 1.0
        m = DIAMatrix.from_dense(d)
        assert set(m.offsets.tolist()) == {0, 1}
        assert m.num_diagonals == 2

    def test_index_overhead_independent_of_nnz(self):
        small = DIAMatrix.from_dense(np.eye(8))
        big = DIAMatrix.from_dense(np.eye(512))
        assert small.index_bytes() == big.index_bytes() == 8

    def test_band_beats_csr_storage(self):
        from repro.sparse.generators import banded

        pat = banded(256, 4, seed=1)
        dia = DIAMatrix.from_coo(pat)
        csr = CSRMatrix.from_coo(pat)
        assert dia.storage_bytes() < csr.storage_bytes()
        assert dia.pad_ratio < 0.05

    def test_scattered_pattern_pads_heavily(self):
        from repro.sparse.generators import uniform_random

        pat = uniform_random(128, 0.01, seed=2)
        dia = DIAMatrix.from_coo(pat)
        assert dia.pad_ratio > 0.9
        assert dia.value_bytes() > 10 * CSRMatrix.from_coo(pat).value_bytes()

    def test_validation(self):
        with pytest.raises(ValidationError):
            DIAMatrix((4, 4), [0, 0], np.zeros((2, 4)))  # duplicate offsets
        with pytest.raises(ValidationError):
            DIAMatrix((4, 4), [5], np.zeros((1, 4)))  # offset out of range
        with pytest.raises(ValidationError):
            DIAMatrix((4, 4), [0], np.zeros((1, 3)))  # wrong width

    def test_negative_offset_diagonal(self):
        d = np.zeros((5, 5))
        for i in range(1, 5):
            d[i, i - 1] = float(i)
        m = DIAMatrix.from_dense(d)
        x = np.arange(5.0)
        assert np.allclose(m.spmv(x), d @ x)
