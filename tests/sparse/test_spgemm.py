"""SpGEMM (Gustavson) kernels, costs and lowering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Engine
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import banded, uniform_random
from repro.sparse.spgemm import (
    build_spgemm_graph,
    intermediate_products,
    spgemm,
    spgemm_chunk_cost,
    spgemm_rows,
)
from repro.util.errors import ValidationError


def csr(n=48, density=0.1, seed=0):
    return CSRMatrix.from_coo(uniform_random(n, density, seed=seed))


class TestNumerics:
    def test_matches_dense(self):
        a, b = csr(seed=1), csr(seed=2)
        c = spgemm(a, b)
        assert np.allclose(c.to_dense(), a.to_dense() @ b.to_dense(), atol=1e-12)

    def test_band_times_band_widens(self):
        a = CSRMatrix.from_coo(banded(32, 1, seed=3))
        c = spgemm(a, a)
        assert np.allclose(c.to_dense(), a.to_dense() @ a.to_dense())
        # Tridiagonal squared -> pentadiagonal.
        rows, cols = np.nonzero(c.to_dense())
        assert np.max(np.abs(rows - cols)) == 2

    def test_identity(self):
        a = csr(seed=4)
        eye = CSRMatrix.from_dense(np.eye(a.shape[0]))
        assert np.allclose(spgemm(a, eye).to_dense(), a.to_dense())
        assert np.allclose(spgemm(eye, a).to_dense(), a.to_dense())

    def test_empty_rows_propagate(self):
        d = np.zeros((8, 8))
        d[0, 1] = 2.0
        a = CSRMatrix.from_dense(d)
        c = spgemm(a, csr(8, 0.3, seed=5))
        assert np.allclose(c.to_dense(), d @ csr(8, 0.3, seed=5).to_dense())
        assert c.row_lengths()[3] == 0

    def test_rows_partition(self):
        a, b = csr(seed=6), csr(seed=7)
        full = spgemm(a, b)
        l1, c1, v1 = spgemm_rows(a, b, 0, 24)
        l2, c2, v2 = spgemm_rows(a, b, 24, 48)
        assert np.array_equal(np.concatenate([l1, l2]), full.row_lengths())
        assert np.array_equal(np.concatenate([v1, v2]), full.data)

    def test_dimension_mismatch(self):
        with pytest.raises(ValidationError):
            spgemm(csr(16, seed=1), csr(32, seed=2))

    def test_numerical_cancellation_dropped(self):
        # A row producing an exact zero entry must not store it.
        a = CSRMatrix.from_dense(np.array([[1.0, 1.0], [0.0, 0.0]]))
        b = CSRMatrix.from_dense(np.array([[1.0, 0.0], [-1.0, 0.0]]))
        c = spgemm(a, b)
        assert c.nnz == 0


class TestCost:
    def test_intermediate_products_hand_case(self):
        # A row with entries in columns {0, 1}; B rows 0 and 1 have 2
        # and 3 entries -> 5 intermediate products for that row.
        a = CSRMatrix.from_dense(np.array([[1.0, 1.0], [0.0, 0.0]]))
        b = CSRMatrix.from_dense(np.array([[1.0, 1.0], [1.0, 1.0]]))
        assert intermediate_products(a, b, 0, 1) == 4
        assert intermediate_products(a, b, 1, 2) == 0

    def test_flops_track_intermediates(self, machine):
        a, b = csr(seed=8), csr(seed=9)
        cost = spgemm_chunk_cost(a, b, machine, 0, a.shape[0])
        assert cost.flops == 2 * intermediate_products(a, b, 0, a.shape[0])

    def test_memory_bound(self, machine):
        a, b = csr(seed=10), csr(seed=11)
        cost = spgemm_chunk_cost(a, b, machine, 0, a.shape[0])
        assert cost.arithmetic_intensity() < 1.0


class TestBuild:
    def test_executes_and_verifies(self, machine):
        a, b = csr(seed=12), csr(seed=13)
        build = build_spgemm_graph(a, b, machine, threads=3)
        Engine(machine).run(build.graph, threads=3)
        assert build.verify() < 1e-12

    def test_assembly_after_chunks(self, machine):
        a, b = csr(seed=14), csr(seed=15)
        build = build_spgemm_graph(a, b, machine, threads=4, execute=False)
        assemble = [t for t in build.graph if t.name == "assemble"]
        assert len(assemble) == 1
        assert len(assemble[0].deps) == 4

    def test_unexecuted_verify_rejected(self, machine):
        build = build_spgemm_graph(csr(seed=1), csr(seed=2), machine, 2, execute=False)
        with pytest.raises(ValidationError):
            build.verify()


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_property_spgemm_matches_dense(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 33))
    da = rng.uniform(-1, 1, size=(n, n))
    db = rng.uniform(-1, 1, size=(n, n))
    da[rng.uniform(size=(n, n)) > 0.3] = 0.0
    db[rng.uniform(size=(n, n)) > 0.3] = 0.0
    a, b = CSRMatrix.from_dense(da), CSRMatrix.from_dense(db)
    assert np.allclose(spgemm(a, b).to_dense(), da @ db, atol=1e-12)
