"""Example scripts stay runnable.

The fast examples run unconditionally; the slower end-to-end ones are
gated behind ``REPRO_EXAMPLES=1`` so the default suite stays quick.
Each script runs in-process via runpy with a temporary cwd.
"""

import os
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST = ["crossover_analysis.py"]
SLOW = [
    "quickstart.py",
    "power_trace_demo.py",
    "mixed_workload.py",
    "distributed_caps.py",
    "sparse_energy.py",
    "full_paper_study.py",
    "what_if_platforms.py",
]


def _run(script: str, tmp_path, monkeypatch, extra_env=None):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(sys, "argv", [script])
    for key, value in (extra_env or {}).items():
        monkeypatch.setenv(key, value)
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")


@pytest.mark.parametrize("script", FAST)
def test_fast_examples(script, tmp_path, monkeypatch, capsys):
    _run(script, tmp_path, monkeypatch)
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


@pytest.mark.skipif(
    os.environ.get("REPRO_EXAMPLES") != "1",
    reason="slow example smoke tests; set REPRO_EXAMPLES=1 to run",
)
@pytest.mark.parametrize("script", SLOW)
def test_slow_examples(script, tmp_path, monkeypatch, capsys):
    env = {"REPRO_QUICK": "1"} if script == "full_paper_study.py" else {}
    _run(script, tmp_path, monkeypatch, env)
    out = capsys.readouterr().out
    assert len(out) > 200
