"""Validation helper behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.util.errors import ValidationError
from repro.util.validation import (
    is_power_of_two,
    next_power_of_two,
    require_fraction,
    require_in_range,
    require_nonempty,
    require_nonnegative,
    require_positive,
    require_power_of_two,
    require_type,
)


def test_require_positive_accepts_and_returns():
    assert require_positive(3.5, "x") == 3.5


@pytest.mark.parametrize("bad", [0, -1, -0.5])
def test_require_positive_rejects(bad):
    with pytest.raises(ValidationError, match="x"):
        require_positive(bad, "x")


def test_require_nonnegative():
    assert require_nonnegative(0, "x") == 0
    with pytest.raises(ValidationError):
        require_nonnegative(-1e-9, "x")


def test_require_in_range():
    assert require_in_range(5, 0, 10, "x") == 5
    with pytest.raises(ValidationError):
        require_in_range(11, 0, 10, "x")


def test_require_fraction_bounds():
    assert require_fraction(1.0, "eff") == 1.0
    assert require_fraction(0.01, "eff") == 0.01
    for bad in (0.0, 1.5, -0.2):
        with pytest.raises(ValidationError):
            require_fraction(bad, "eff")


@pytest.mark.parametrize("n,expected", [(1, True), (2, True), (64, True), (3, False), (0, False), (-4, False)])
def test_is_power_of_two(n, expected):
    assert is_power_of_two(n) is expected


def test_require_power_of_two():
    assert require_power_of_two(64, "n") == 64
    with pytest.raises(ValidationError):
        require_power_of_two(65, "n")


@given(st.integers(min_value=1, max_value=10**6))
def test_next_power_of_two_properties(n):
    m = next_power_of_two(n)
    assert is_power_of_two(m)
    assert m >= n
    assert m < 2 * n or n == 1


def test_next_power_of_two_rejects_nonpositive():
    with pytest.raises(ValidationError):
        next_power_of_two(0)


def test_require_type():
    assert require_type(3, int, "x") == 3
    with pytest.raises(ValidationError):
        require_type("3", int, "x")


def test_require_nonempty():
    assert require_nonempty([1], "xs") == [1]
    with pytest.raises(ValidationError):
        require_nonempty([], "xs")
    # generators are materialized
    assert require_nonempty((i for i in range(2)), "xs") == [0, 1]
