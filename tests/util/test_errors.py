"""Exception hierarchy contracts."""

import pytest

from repro.util.errors import (
    CalibrationError,
    ConfigurationError,
    MeasurementError,
    ReproError,
    SchedulingError,
    SimulationError,
    ValidationError,
)

ALL = [
    ConfigurationError,
    ValidationError,
    SchedulingError,
    SimulationError,
    MeasurementError,
    CalibrationError,
]


@pytest.mark.parametrize("exc", ALL)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


@pytest.mark.parametrize("exc", ALL)
def test_catchable_as_repro_error(exc):
    with pytest.raises(ReproError):
        raise exc("boom")


def test_repro_error_is_exception():
    assert issubclass(ReproError, Exception)


def test_subclasses_are_distinct():
    assert not issubclass(ValidationError, ConfigurationError)
    assert not issubclass(ConfigurationError, ValidationError)
