"""Unit constants and formatting."""

import pytest

from repro.util import units


def test_binary_multiples():
    assert units.KiB == 1024
    assert units.MiB == 1024**2
    assert units.GiB == 1024**3


def test_decimal_multiples():
    assert units.KB == 1_000
    assert units.MB == 1_000_000
    assert units.GB == 1_000_000_000


def test_frequency_constants():
    assert units.GHZ == 1e9
    assert units.MHZ == 1e6


def test_fmt_bytes_scales():
    assert units.fmt_bytes(8 * units.MiB) == "8 MiB"
    assert units.fmt_bytes(512) == "512 B"
    assert "GiB" in units.fmt_bytes(4 * units.GiB)


def test_fmt_hz():
    assert units.fmt_hz(3.2 * units.GHZ) == "3.2 GHz"
    assert "kHz" in units.fmt_hz(5_000)


def test_fmt_seconds_scales_down():
    assert units.fmt_seconds(2.0) == "2 s"
    assert "ms" in units.fmt_seconds(5e-3)
    assert "us" in units.fmt_seconds(5e-6)
    assert "ns" in units.fmt_seconds(5e-9)
    assert units.fmt_seconds(0) == "0 s"


def test_fmt_watts_and_joules():
    assert units.fmt_watts(35.3) == "35.3 W"
    assert units.fmt_joules(12.5) == "12.5 J"
    assert "mJ" in units.fmt_joules(5e-3)


def test_fmt_flops():
    assert "Gflop" in units.fmt_flops(204.8e9)
    assert "Mflop" in units.fmt_flops(3e6)
