"""TextTable rendering."""

import pytest

from repro.util.errors import ValidationError
from repro.util.tables import TextTable, format_cell


def test_format_cell_float_precision():
    assert format_cell(3.14159, 3) == "3.142"
    assert format_cell(0) == "0"
    assert format_cell(0.0) == "0"


def test_format_cell_large_and_small_use_general():
    assert "e" in format_cell(6356.33e2) or format_cell(635633.0) == "6.36e+05"
    assert format_cell(1e-5, 3) == "1e-05"


def test_format_cell_str_passthrough():
    assert format_cell("OpenBLAS") == "OpenBLAS"


def _sample():
    t = TextTable(["Alg", "512", "Avg"])
    t.add_row("Strassen", 2.872, 2.965)
    t.add_row("CAPS", 2.840, 2.788)
    return t


def test_row_width_mismatch_raises():
    t = TextTable(["a", "b"])
    with pytest.raises(ValidationError):
        t.add_row(1)


def test_ascii_has_header_and_rule():
    text = _sample().to_ascii()
    lines = text.splitlines()
    assert "Alg" in lines[0]
    assert set(lines[1]) <= {"-", " "}
    assert "Strassen" in lines[2]


def test_ascii_columns_aligned():
    lines = _sample().to_ascii().splitlines()
    assert len({len(line) for line in lines}) == 1


def test_markdown_shape():
    md = _sample().to_markdown()
    lines = md.splitlines()
    assert lines[0].startswith("| Alg")
    assert lines[1].startswith("|---")
    assert len(lines) == 4


def test_csv():
    csv = _sample().to_csv()
    assert csv.splitlines()[0] == "Alg,512,Avg"
    assert "Strassen" in csv


def test_extend():
    t = TextTable(["a"])
    t.extend([[1], [2]])
    assert len(t.rows) == 2
