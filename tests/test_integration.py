"""End-to-end reproduction checks (DESIGN §4 acceptance criteria).

Runs a reduced version of the paper's execution matrix with full
numerics + verification and asserts the *shapes* the paper reports:
who wins, by roughly what factor, and how the energy-performance
scaling classes fall out.
"""

import pytest

from repro import EnergyPerformanceStudy, StudyConfig, haswell_e3_1225
from repro.core import table2_slowdown, table3_power, table4_ep
from repro.core.scaling import ScalingClass


@pytest.fixture(scope="module")
def result():
    machine = haswell_e3_1225()
    cfg = StudyConfig(sizes=(256, 512), threads=(1, 2, 4), execute_max_n=256)
    return EnergyPerformanceStudy(machine, config=cfg).run()


class TestCriterion1Performance:
    def test_openblas_fastest_everywhere(self, result):
        for n in result.config.sizes:
            for p in result.config.threads:
                assert result.slowdown("strassen", n, p) > 1.0
                assert result.slowdown("caps", n, p) > 1.0

    def test_strassen_family_roughly_3x_slower(self, result):
        assert 2.0 < result.avg_slowdown("strassen") < 4.5
        assert 2.0 < result.avg_slowdown("caps") < 4.0

    def test_caps_faster_than_strassen_on_average(self, result):
        """Table II: CAPS beats classic Strassen (paper: 5.97%)."""
        assert result.avg_slowdown("caps") < result.avg_slowdown("strassen")


class TestCriterion2And3Power:
    def test_openblas_highest_power_at_full_threads(self, result):
        pmax = max(result.config.threads)
        for n in result.config.sizes:
            ob = result.power_w("openblas", n, pmax)
            assert ob > result.power_w("strassen", n, pmax)
            assert ob > result.power_w("caps", n, pmax)

    def test_openblas_power_grows_steeply(self, result):
        watts = result.avg_power_by_threads("openblas")
        assert watts[4] / watts[1] > 2.0

    def test_strassen_family_power_flatter(self, result):
        ob = result.avg_power_by_threads("openblas")
        for alg in ("strassen", "caps"):
            w = result.avg_power_by_threads(alg)
            assert (w[4] - w[1]) < (ob[4] - ob[1])

    def test_caps_lowest_power_at_one_thread(self, result):
        """Paper Table III: CAPS 1-thread average is the lowest row."""
        w1 = {alg: result.avg_power_by_threads(alg)[1] for alg in result.algorithm_names}
        assert w1["caps"] <= w1["strassen"]


class TestCriterion4EnergyPerformance:
    def test_table4_ordering(self, result):
        """OpenBLAS EP >> CAPS >= Strassen at every size."""
        for n in result.config.sizes:
            ob = result.avg_ep_by_size("openblas")[n]
            st = result.avg_ep_by_size("strassen")[n]
            ca = result.avg_ep_by_size("caps")[n]
            assert ob > 2 * max(st, ca)
            assert ca >= st * 0.9  # CAPS slightly above Strassen

    def test_ep_falls_steeply_with_size(self, result):
        for alg in result.algorithm_names:
            by_size = result.avg_ep_by_size(alg)
            assert by_size[256] > 4 * by_size[512]


class TestCriterion5ScalingClasses:
    def test_openblas_superlinear(self, result):
        """Fig. 7: OpenBLAS falls well beyond the linear scale."""
        for n in result.config.sizes:
            pts = result.scaling_curve("openblas", n)
            assert pts[-1].scaling_class is ScalingClass.SUPERLINEAR
            assert pts[-1].s > 1.5 * pts[-1].parallelism

    def test_strassen_at_or_below_linear(self, result):
        for n in result.config.sizes:
            pts = result.scaling_curve("strassen", n)
            assert pts[-1].s <= pts[-1].parallelism * 1.05

    def test_caps_closer_to_linear_than_strassen(self, result):
        """Fig. 7: 'our CAPS implementation is slightly closer to the
        linear scale than the classic Strassen implementation'."""
        pmax = max(result.config.threads)
        for n in result.config.sizes:
            s_str = result.scaling_curve("strassen", n)[-1]
            s_caps = result.scaling_curve("caps", n)[-1]
            assert abs(s_caps.distance_to_linear) <= abs(s_str.distance_to_linear)


class TestNumericalVerification:
    def test_executed_runs_were_verified(self, result):
        # The fixture ran with verify=True and execute_max_n=256; a
        # verification failure would have raised during the fixture.
        assert result.measurement("strassen", 256, 4).flops > 0

    def test_tables_render(self, result):
        for table in (table2_slowdown(result), table3_power(result), table4_ep(result)):
            text = table.to_ascii()
            assert len(text.splitlines()) >= 3
