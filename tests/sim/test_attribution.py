"""Per-task energy attribution."""

import pytest

from repro.algorithms import BlockedGemm, CapsStrassen, StrassenWinograd
from repro.runtime.cost import TaskCost
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskGraph
from repro.sim import Engine, attribute_energy, attribution_table
from repro.util.errors import ValidationError


def _run(machine, graph, threads=4):
    schedule = Scheduler(machine, threads, execute=False).run(graph)
    measurement = Engine(machine).measure(schedule, label="x")
    return schedule, measurement


def test_attribution_conserves_total_energy(machine):
    """Sum of attributed energies equals the engine's wall energy
    (package + DRAM) — nothing lost, nothing double-counted."""
    build = StrassenWinograd(machine).build(512, 4, execute=False)
    schedule, measurement = _run(machine, build.graph)
    groups = attribute_energy(schedule, build.graph, machine)
    attributed = sum(g.total_j for g in groups.values())
    assert attributed == pytest.approx(measurement.total_energy_j, rel=1e-9)


def test_strassen_communication_share(machine):
    """The pre/post additions carry a visible share of the energy —
    Strassen's 'communication' made quantitative."""
    build = StrassenWinograd(machine).build(1024, 4, execute=False)
    schedule, _ = _run(machine, build.graph)
    groups = attribute_energy(schedule, build.graph, machine)
    total = sum(g.total_j for g in groups.values())
    comm = groups["pre"].total_j + groups["post"].total_j
    assert 0.1 < comm / total < 0.5
    assert groups["grain"].total_j > comm  # multiplies still dominate


def test_blocked_gemm_single_group(machine):
    build = BlockedGemm(machine).build(512, 4, execute=False)
    schedule, _ = _run(machine, build.graph)
    groups = attribute_energy(schedule, build.graph, machine)
    assert set(groups) == {"tile"}
    assert groups["tile"].tasks == len(
        [t for t in build.graph if not t.cost.is_zero]
    )


def test_caps_pack_energy_visible(machine):
    build = CapsStrassen(machine).build(512, 4, execute=False)
    schedule, _ = _run(machine, build.graph)
    groups = attribute_energy(schedule, build.graph, machine)
    pack = sum(g.total_j for p, g in groups.items() if p.startswith("bfs-pack"))
    assert pack > 0
    assert groups["leaf"].total_j > pack  # packing is a small tax


def test_joins_excluded(machine):
    g = TaskGraph()
    a = g.add("work", TaskCost(flops=1e9))
    g.join("sync", [a])
    schedule, _ = _run(machine, g, threads=1)
    groups = attribute_energy(schedule, g, machine)
    assert set(groups) == {"work"}


def test_table_sorted_by_energy(machine):
    build = StrassenWinograd(machine).build(512, 4, execute=False)
    schedule, _ = _run(machine, build.graph)
    table = attribution_table(attribute_energy(schedule, build.graph, machine))
    totals = [float(row[5]) for row in table.rows]
    assert totals == sorted(totals, reverse=True)
    assert table.rows[0][0] == "grain"


def test_empty_attribution_rejected():
    with pytest.raises(ValidationError):
        attribution_table({})
