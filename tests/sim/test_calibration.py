"""Calibration machinery: coordinate descent and the paper-target score."""

import pytest

from repro.sim.calibration import (
    PAPER_TARGETS,
    CalibrationResult,
    calibrate,
    score_study,
)
from repro.util.errors import CalibrationError


class TestCoordinateDescent:
    def test_minimizes_quadratic(self):
        objective = lambda p: (p["x"] - 3.0) ** 2 + (p["y"] + 1.0) ** 2
        res = calibrate(
            objective,
            initial={"x": 0.0, "y": 0.0},
            steps={"x": 1.0, "y": 1.0},
            bounds={"x": (-10, 10), "y": (-10, 10)},
            rounds=8,
        )
        assert res.loss < 0.1
        assert res.params["x"] == pytest.approx(3.0, abs=0.3)
        assert res.params["y"] == pytest.approx(-1.0, abs=0.3)

    def test_respects_bounds(self):
        objective = lambda p: (p["x"] - 100.0) ** 2
        res = calibrate(
            objective,
            initial={"x": 0.0},
            steps={"x": 4.0},
            bounds={"x": (0.0, 5.0)},
            rounds=6,
        )
        assert res.params["x"] <= 5.0

    def test_never_worse_than_initial(self):
        objective = lambda p: abs(p["x"])
        res = calibrate(
            objective,
            initial={"x": 0.0},
            steps={"x": 1.0},
            bounds={"x": (-5, 5)},
        )
        assert res.loss <= objective({"x": 0.0})

    def test_missing_bounds_detected(self):
        with pytest.raises(CalibrationError):
            calibrate(lambda p: 0.0, {"x": 0.0}, steps={"x": 1.0}, bounds={})

    def test_evaluation_count_reported(self):
        calls = []
        res = calibrate(
            lambda p: calls.append(1) or 0.0,
            {"x": 0.0},
            steps={"x": 1.0},
            bounds={"x": (-1, 1)},
            rounds=1,
        )
        assert res.evaluations == len(calls)
        assert isinstance(res, CalibrationResult)


class TestScore:
    def test_shipped_defaults_score_well(self, machine):
        """The calibrated defaults must stay close to the paper's
        published tables (guards against regressions in the cost
        models)."""
        from repro import EnergyPerformanceStudy, StudyConfig

        cfg = StudyConfig(sizes=(512, 1024), execute_max_n=0, verify=False)
        result = EnergyPerformanceStudy(machine, config=cfg).run()
        assert score_study(result, PAPER_TARGETS) < 1.5

    def test_detuned_model_scores_worse(self, machine):
        from repro import EnergyPerformanceStudy, StudyConfig
        from repro.machine.energy import EnergyModel

        bad = machine.with_energy(EnergyModel(package_static_w=60.0))
        cfg = StudyConfig(sizes=(512,), execute_max_n=0, verify=False)
        good_res = EnergyPerformanceStudy(machine, config=cfg).run()
        bad_res = EnergyPerformanceStudy(bad, config=cfg).run()
        assert score_study(bad_res) > score_study(good_res)

    def test_paper_targets_values(self):
        assert PAPER_TARGETS.slowdown["strassen"] == pytest.approx(2.965)
        assert PAPER_TARGETS.slowdown["caps"] == pytest.approx(2.788)
        assert PAPER_TARGETS.power_by_threads["openblas"][3] == pytest.approx(49.13)
