"""Measurement-noise model."""

import numpy as np
import pytest

from repro.power.planes import Plane
from repro.runtime.cost import TaskCost
from repro.runtime.task import TaskGraph
from repro.sim import Engine, NoiseModel, NoisyEngine


def graph():
    g = TaskGraph()
    g.add("t", TaskCost(flops=5e9, efficiency=0.8, bytes_dram=5e7))
    return g


def exact(machine):
    return Engine(machine).run(graph(), threads=1, execute=False)


def test_noise_changes_values_slightly(machine):
    base = exact(machine)
    noisy = NoiseModel().perturb(base, np.random.default_rng(1))
    assert noisy.energy.package != base.energy.package
    assert noisy.energy.package == pytest.approx(base.energy.package, rel=0.05)
    assert noisy.elapsed_s == pytest.approx(base.elapsed_s, rel=0.05)


def test_noise_preserves_invariants(machine):
    base = exact(machine)
    rng = np.random.default_rng(2)
    for _ in range(20):
        noisy = NoiseModel().perturb(base, rng)
        assert noisy.energy.pp0 <= noisy.energy.package
        assert noisy.energy.package >= 0
        # Trace integral still matches the reported energies.
        assert noisy.trace.energy(Plane.PACKAGE) == pytest.approx(
            noisy.energy.package, rel=1e-9
        )
        assert noisy.trace.duration == pytest.approx(noisy.elapsed_s, rel=1e-9)


def test_zero_noise_is_identity(machine):
    base = exact(machine)
    silent = NoiseModel(energy_jitter=0.0, drift_w=0.0, time_jitter=0.0)
    noisy = silent.perturb(base, np.random.default_rng(3))
    assert noisy.energy.package == pytest.approx(base.energy.package)
    assert noisy.elapsed_s == base.elapsed_s


def test_noisy_engine_reproducible_from_seed(machine):
    a = NoisyEngine(Engine(machine), seed=7).run(graph(), 1, execute=False)
    b = NoisyEngine(Engine(machine), seed=7).run(graph(), 1, execute=False)
    assert a.energy.package == b.energy.package
    assert a.elapsed_s == b.elapsed_s


def test_noisy_engine_varies_across_runs(machine):
    eng = NoisyEngine(Engine(machine), seed=9)
    a = eng.run(graph(), 1, execute=False)
    b = eng.run(graph(), 1, execute=False)
    assert a.energy.package != b.energy.package


def test_noise_unbiased_on_average(machine):
    base = exact(machine)
    rng = np.random.default_rng(11)
    samples = [NoiseModel().perturb(base, rng).energy.package for _ in range(300)]
    assert np.mean(samples) == pytest.approx(base.energy.package, rel=0.01)


def test_validation():
    with pytest.raises(Exception):
        NoiseModel(energy_jitter=-0.1)


def test_noisy_engine_drives_a_full_study(machine):
    """The study driver accepts a NoisyEngine: realistic spread without
    touching the driver (duck-typed engine)."""
    from repro import EnergyPerformanceStudy, StudyConfig

    cfg = StudyConfig(sizes=(128,), threads=(1, 2), execute_max_n=0, verify=False)
    exact = EnergyPerformanceStudy(machine, config=cfg).run()
    noisy = EnergyPerformanceStudy(
        machine, config=cfg, engine=NoisyEngine(Engine(machine), seed=3)
    ).run()
    for key in exact.runs:
        e, n = exact.runs[key], noisy.runs[key]
        assert n.elapsed_s != e.elapsed_s  # perturbed...
        assert n.elapsed_s == pytest.approx(e.elapsed_s, rel=0.05)  # ...slightly
    # Derived tables stay within a percent of the exact study.
    assert noisy.avg_slowdown("strassen") == pytest.approx(
        exact.avg_slowdown("strassen"), rel=0.02
    )
