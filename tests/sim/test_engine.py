"""Execution engine: energy accounting, traces, MSR deposits."""

import pytest

from repro.power.msr import MsrFile
from repro.power.papi import PapiLibrary
from repro.power.planes import Plane
from repro.runtime.cost import TaskCost
from repro.runtime.openmp import OpenMP
from repro.runtime.task import TaskGraph
from repro.sim.engine import Engine


def demo_graph(n_parallel=7):
    omp = OpenMP("demo", 4)
    pre = omp.task("pre", TaskCost(flops=1e9, efficiency=0.9, bytes_dram=5e7))
    muls = [
        omp.task(f"mul{i}", TaskCost(flops=2e9, efficiency=0.4, bytes_dram=1e8), deps=[pre])
        for i in range(n_parallel)
    ]
    j = omp.taskwait(muls)
    omp.task("post", TaskCost(flops=5e8, efficiency=0.5, bytes_dram=2e8), deps=[j])
    return omp.graph


def test_run_produces_consistent_measurement(machine, engine):
    meas = engine.run(demo_graph(), threads=4)
    meas.check_invariants(machine)
    assert meas.elapsed_s > 0
    assert meas.energy.package > meas.energy.pp0
    assert meas.flops == pytest.approx(1e9 + 7 * 2e9 + 5e8)


def test_energy_includes_static_floor(machine, engine):
    meas = engine.run(demo_graph(), threads=1)
    floor = machine.energy.package_static_w * meas.elapsed_s
    assert meas.energy.package > floor


def test_trace_energy_matches_accounting(engine):
    meas = engine.run(demo_graph(), threads=2)
    assert meas.trace.energy(Plane.PACKAGE) == pytest.approx(
        meas.energy.package, rel=1e-9
    )
    assert meas.trace.energy(Plane.DRAM) == pytest.approx(meas.energy.dram, rel=1e-9)


def test_more_threads_faster_but_more_power(engine):
    m1 = engine.run(demo_graph(), threads=1)
    m4 = engine.run(demo_graph(), threads=4)
    assert m4.elapsed_s < m1.elapsed_s
    assert m4.avg_power_w() > m1.avg_power_w()


def test_energy_conservation_across_threads(engine):
    """Dynamic energy (work) is thread-count independent; only the
    static-power-over-time part changes."""
    m1 = engine.run(demo_graph(), threads=1)
    m4 = engine.run(demo_graph(), threads=4)
    static = engine.machine.energy.package_static_w
    dyn1 = m1.energy.package - static * m1.elapsed_s
    dyn4 = m4.energy.package - static * m4.elapsed_s
    # Busy-core power also scales with busy time, so remove it too.
    core_w = engine.machine.energy.core_active_w
    dyn1 -= core_w * m1.stats.busy_core_seconds
    dyn4 -= core_w * m4.stats.busy_core_seconds
    assert dyn1 == pytest.approx(dyn4, rel=1e-9)


def test_msr_deposit_feeds_papi(machine):
    msr = MsrFile()
    engine = Engine(machine, msr=msr)
    papi = PapiLibrary(msr)
    es = papi.create_eventset()
    es.add_event("rapl:::PACKAGE_ENERGY:PACKAGE0")
    es.start()
    meas = engine.run(demo_graph(), threads=4)
    (pkg_nj,) = es.stop()
    assert pkg_nj / 1e9 == pytest.approx(meas.energy.package, rel=1e-4)


def test_trace_coarsening_preserves_energy(machine):
    fine = Engine(machine, max_trace_segments=100000)
    coarse = Engine(machine, max_trace_segments=4)
    g = demo_graph()
    mf = fine.run(g, threads=4, execute=False)
    mc = coarse.run(g, threads=4, execute=False)
    assert len(mc.trace) <= 8  # a few segments after coarsening
    assert mc.energy.package == pytest.approx(mf.energy.package, rel=1e-9)
    assert mc.elapsed_s == pytest.approx(mf.elapsed_s)


def test_idle_measurement(machine, engine):
    meas = engine.idle_measurement(60.0)
    assert meas.elapsed_s == 60.0
    assert meas.avg_power_w() == pytest.approx(machine.energy.package_static_w)
    assert meas.flops == 0


def test_empty_graph(engine):
    g = TaskGraph("empty")
    g.add("only-join")  # zero-cost source
    meas = engine.run(g, threads=1)
    assert meas.elapsed_s == 0.0
    assert meas.energy.package == 0.0


def test_label(engine):
    meas = engine.run(demo_graph(), threads=1, label="custom")
    assert meas.label == "custom"
    assert "custom" in meas.summary()
