"""Model-term ablations: every energy coefficient must matter.

Calibration can hide dead code — a term could be mis-wired and the fit
would just absorb it.  These tests zero/inflate individual coefficients
and require the observable the term is responsible for to move in the
predicted direction.
"""

import pytest

from repro.algorithms import BlockedGemm, StrassenWinograd
from repro.machine import haswell_e3_1225
from repro.machine.energy import EnergyModel
from repro.sim import Engine


def measure(machine, alg_cls=BlockedGemm, n=512, threads=4, **alg_kw):
    alg = alg_cls(machine, **alg_kw)
    build = alg.build(n, threads, execute=False)
    return Engine(machine).run(build.graph, threads, execute=False)


@pytest.fixture(scope="module")
def base():
    return haswell_e3_1225()


def _with(base, **kw):
    return base.with_energy(base.energy.replace(**kw))


def test_static_power_sets_the_idle_floor(base):
    hot = measure(_with(base, package_static_w=30.0))
    cold = measure(_with(base, package_static_w=1.0))
    assert hot.avg_power_w() - cold.avg_power_w() == pytest.approx(29.0, rel=0.01)
    assert hot.elapsed_s == cold.elapsed_s  # energy model never affects time


def test_flop_price_hits_compute_dense_kernels_hardest(base):
    cheap = base
    pricey = _with(base, j_per_flop=base.energy.j_per_flop * 2)
    delta_blocked = (
        measure(pricey).avg_power_w() - measure(cheap).avg_power_w()
    )
    delta_strassen = (
        measure(pricey, StrassenWinograd).avg_power_w()
        - measure(cheap, StrassenWinograd).avg_power_w()
    )
    assert delta_blocked > delta_strassen > 0


def test_uncore_price_hits_streaming_kernels_hardest(base):
    pricey = _with(base, uncore_j_per_dram_byte=base.energy.uncore_j_per_dram_byte * 3)
    delta_blocked = (
        measure(pricey).avg_power_w() - measure(base).avg_power_w()
    )
    delta_strassen = (
        measure(pricey, StrassenWinograd).avg_power_w()
        - measure(base, StrassenWinograd).avg_power_w()
    )
    assert delta_strassen > delta_blocked >= 0


def test_core_active_power_scales_with_occupancy(base):
    pricey = _with(base, core_active_w=base.energy.core_active_w + 2.0)
    one = measure(pricey, threads=1).avg_power_w() - measure(base, threads=1).avg_power_w()
    four = measure(pricey, threads=4).avg_power_w() - measure(base, threads=4).avg_power_w()
    # Four busy cores pick up ~4x the extra per-core power.
    assert four == pytest.approx(4 * one, rel=0.1)


def test_dram_plane_isolated_from_package(base):
    pricey = _with(base, dram_j_per_byte=base.energy.dram_j_per_byte * 10)
    a, b = measure(base), measure(pricey)
    assert b.energy.dram > a.energy.dram
    assert b.energy.package == pytest.approx(a.energy.package, rel=1e-9)


def test_zeroing_everything_leaves_zero_power(base):
    silent = base.with_energy(
        EnergyModel(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    )
    meas = measure(silent)
    assert meas.energy.package == 0.0
    assert meas.energy.dram == 0.0
    assert meas.elapsed_s > 0  # time untouched


def test_ablated_model_breaks_the_papers_ordering(base):
    """Kill the uncore term and Strassen's power advantage at 4 threads
    collapses — the ordering is carried by the traffic pricing, not
    baked in elsewhere."""
    no_uncore = _with(base, uncore_j_per_dram_byte=0.0, dram_static_w=0.0)
    gap_full = measure(base).avg_power_w() - measure(
        base, StrassenWinograd
    ).avg_power_w()
    gap_ablated = measure(no_uncore).avg_power_w() - measure(
        no_uncore, StrassenWinograd
    ).avg_power_w()
    assert gap_ablated > gap_full  # Strassen loses its uncore "credit"
