"""RunMeasurement invariants and accessors."""

import pytest

from repro.machine.energy import PlaneEnergy
from repro.power.planes import Plane
from repro.power.sampling import PowerSegment, PowerTrace
from repro.runtime.stats import RuntimeStats
from repro.sim.measurement import RunMeasurement
from repro.util.errors import MeasurementError, SimulationError


def make(elapsed=2.0, pkg=40.0, pp0=25.0, dram=4.0, busy=6.0, threads=4):
    trace = PowerTrace(
        [
            PowerSegment(
                0.0,
                elapsed,
                {
                    Plane.PACKAGE: pkg / elapsed,
                    Plane.PP0: pp0 / elapsed,
                    Plane.DRAM: dram / elapsed,
                },
            )
        ]
    )
    stats = RuntimeStats(
        makespan=elapsed,
        busy_core_seconds=busy,
        threads=threads,
        task_count=3,
        avg_parallelism=busy / elapsed,
        utilization=busy / elapsed / threads,
        imbalance=1.0,
        migrations=0,
        steals=0,
    )
    return RunMeasurement(
        label="t",
        threads=threads,
        elapsed_s=elapsed,
        energy=PlaneEnergy(pkg, pp0, dram),
        trace=trace,
        flops=1e9,
        bytes_dram=1e8,
        stats=stats,
    )


def test_energy_accessors():
    m = make()
    assert m.energy_j(Plane.PACKAGE) == 40.0
    assert m.energy_j(Plane.PP0) == 25.0
    assert m.energy_j(Plane.DRAM) == 4.0
    with pytest.raises(MeasurementError):
        m.energy_j(Plane.PSYS)


def test_avg_and_peak_power():
    m = make()
    assert m.avg_power_w() == pytest.approx(20.0)
    assert m.peak_power_w() == pytest.approx(20.0)


def test_gflops():
    assert make().gflops == pytest.approx(0.5)


def test_total_energy_no_double_count():
    assert make().total_energy_j == pytest.approx(44.0)


def test_invariants_pass():
    make().check_invariants()


def test_invariant_pp0_exceeds_package():
    m = make(pkg=10.0, pp0=20.0)
    with pytest.raises(SimulationError):
        m.check_invariants()


def test_invariant_busy_exceeds_capacity():
    m = make(busy=100.0, threads=2)
    with pytest.raises(SimulationError):
        m.check_invariants()


def test_summary_format():
    s = make().summary()
    assert "t:" in s and "W" in s and "Gflop/s" in s
