"""CLI subcommands (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_describe(capsys):
    code, out, _ = run(capsys, "describe")
    assert code == 0
    assert "haswell-e3-1225" in out
    assert "204.8 Gflop/s" in out


def test_describe_custom_machine(capsys):
    code, out, _ = run(capsys, "describe", "--cores", "8", "--channels", "2")
    assert code == 0
    assert "generic-smp-8c" in out


def test_study_small(capsys):
    code, out, _ = run(
        capsys,
        "study",
        "--sizes", "128", "256",
        "--threads", "1", "2",
        "--execute-max-n", "0",
        "--no-verify",
    )
    assert code == 0
    assert "Table II" in out and "Table III" in out and "Table IV" in out
    assert "Strassen" in out and "CAPS" in out


def test_engines_lists_all_kernels(capsys):
    code, out, _ = run(capsys, "engines")
    assert code == 0
    for name in ("reference", "fast", "compiled"):
        assert name in out
    assert "C compiler" in out and "JIT cache" in out


def test_engines_reports_disabled_toolchain(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_COMPILED_TOOLCHAIN", "none")
    code, out, _ = run(capsys, "engines")
    assert code == 0
    assert "REPRO_COMPILED_TOOLCHAIN=none" in out
    assert "fall back to 'fast'" in out


def test_study_unknown_engine_fails_in_argparse(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["study", "--sizes", "128", "--engine", "bogus"])
    assert exc.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_study_engine_flag_matches_fast(capsys):
    """--engine reference and --engine fast print identical tables on
    the small matrix (the differential identity through the CLI)."""
    argv = ("study", "--sizes", "128", "--threads", "1", "2",
            "--execute-max-n", "0", "--no-verify")
    code_f, out_f, _ = run(capsys, *argv, "--engine", "fast")
    code_r, out_r, _ = run(capsys, *argv, "--engine", "reference")
    assert code_f == 0 and code_r == 0
    assert out_f == out_r


def test_study_forced_compiled_without_toolchain_is_an_error(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_COMPILED_TOOLCHAIN", "none")
    code, _, err = run(
        capsys, "study", "--sizes", "128", "--threads", "1",
        "--execute-max-n", "0", "--no-verify", "--engine", "compiled",
    )
    assert code == 2
    assert "error:" in err and "compiled" in err


def test_study_markdown_format(capsys):
    code, out, _ = run(
        capsys,
        "--format", "markdown",
        "study", "--sizes", "128", "--threads", "1",
        "--execute-max-n", "0", "--no-verify",
    )
    assert code == 0
    assert "| OpenBLAS |" in out


def test_study_format_after_subcommand(capsys):
    code, out, _ = run(
        capsys,
        "study", "--format", "csv", "--sizes", "128", "--threads", "1",
        "--execute-max-n", "0", "--no-verify",
    )
    assert code == 0
    assert "Num Threads,1,Average" in out


def test_study_trace_flag_writes_valid_chrome_trace(capsys, tmp_path):
    out_path = tmp_path / "study_trace.json"
    code, out, _ = run(
        capsys,
        "study", "--sizes", "128", "--threads", "1", "2",
        "--execute-max-n", "0", "--no-verify",
        "--trace", str(out_path),
    )
    assert code == 0
    assert "phase summary:" in out
    assert "study.run" in out
    assert str(out_path) in out

    from repro.observability.export import read_trace_json, validate_chrome_trace

    data = read_trace_json(out_path)
    assert validate_chrome_trace(data) == []
    assert data["otherData"]["meta"]["command"] == "repro study"
    assert data["otherData"]["meta"]["wall_s"] > 0


def test_study_parallel_matches_serial(capsys):
    argv = ("study", "--sizes", "128", "--threads", "1", "2",
            "--execute-max-n", "0", "--no-verify")
    code_s, out_s, _ = run(capsys, *argv)
    code_p, out_p, _ = run(capsys, *argv, "--parallel", "2")
    assert code_s == code_p == 0
    assert out_s == out_p  # deterministic fan-out: identical tables


def test_study_transports_match(capsys):
    """--transport shm and --transport pickle print identical tables."""
    argv = ("study", "--sizes", "256", "--threads", "1", "2",
            "--execute-max-n", "0", "--no-verify", "--parallel", "2")
    code_a, out_a, _ = run(capsys, *argv, "--transport", "shm")
    code_b, out_b, _ = run(capsys, *argv, "--transport", "pickle")
    assert code_a == code_b == 0
    assert out_a == out_b


def test_study_checkpoint_then_resume(capsys, tmp_path):
    """An interrupted sweep resumes from its journal: the resumed run
    reports replayed cells and prints the same tables."""
    journal = tmp_path / "study.jsonl"
    argv = ("study", "--sizes", "128", "--threads", "1", "2",
            "--execute-max-n", "0", "--no-verify")
    code_full, out_full, _ = run(capsys, *argv, "--checkpoint", str(journal))
    assert code_full == 0
    # simulate a crash: keep header + 2 cells
    lines = journal.read_text().splitlines(True)
    journal.write_text("".join(lines[:3]))
    code_res, out_res, _ = run(capsys, *argv, "--resume", str(journal))
    assert code_res == 0
    assert f"resumed 2/6 cells from {journal}" in out_res
    assert out_res.split("\n\n", 1)[1] == out_full  # identical tables


def test_study_resume_missing_directory_fails_fast(capsys):
    code, _, err = run(
        capsys, "study", "--sizes", "128", "--threads", "1",
        "--execute-max-n", "0", "--no-verify",
        "--resume", "/no/such/dir/journal.jsonl",
    )
    assert code == 2
    assert "directory does not exist" in err


def test_study_checkpoint_missing_directory_fails_fast(capsys):
    code, _, err = run(
        capsys, "study", "--sizes", "128", "--threads", "1",
        "--execute-max-n", "0", "--no-verify",
        "--checkpoint", "/no/such/dir/journal.jsonl",
    )
    assert code == 2
    assert "directory does not exist" in err


def test_sparse_trace_flag(capsys, tmp_path):
    out_path = tmp_path / "sparse_trace.json"
    code, out, _ = run(
        capsys, "sparse", "--pattern", "banded", "--n", "64", "--repeats", "1",
        "--no-verify", "--trace", str(out_path),
    )
    assert code == 0
    assert "sparse.run" in out

    from repro.observability.export import read_trace_json, validate_chrome_trace

    assert validate_chrome_trace(read_trace_json(out_path)) == []


def test_distributed_trace_flag(capsys, tmp_path):
    out_path = tmp_path / "dist_trace.json"
    code, out, _ = run(
        capsys, "distributed", "--n", "2048", "--nodes", "1", "4",
        "--trace", str(out_path),
    )
    assert code == 0
    assert "distributed.run" in out

    from repro.observability.export import read_trace_json, validate_chrome_trace

    assert validate_chrome_trace(read_trace_json(out_path)) == []


def test_trace_to_missing_directory_fails_fast(capsys):
    code, _, err = run(
        capsys,
        "study", "--sizes", "128", "--threads", "1",
        "--execute-max-n", "0", "--no-verify",
        "--trace", "/nonexistent-dir/out.json",
    )
    assert code == 2
    assert "directory does not exist" in err


def test_trace_viewer_validates_study_trace(capsys, tmp_path):
    out_path = tmp_path / "study_trace.json"
    code, _, _ = run(
        capsys,
        "study", "--sizes", "256", "--threads", "1", "2",
        "--execute-max-n", "0", "--no-verify",
        "--trace", str(out_path),
    )
    assert code == 0
    import subprocess
    import sys
    from pathlib import Path

    viewer = Path(__file__).resolve().parent.parent / "tools" / "trace.py"
    proc = subprocess.run(
        [sys.executable, str(viewer), str(out_path), "--validate", "--tol", "0.05"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "trace is valid" in proc.stdout


def test_choose_with_generous_cap(capsys):
    code, out, _ = run(
        capsys, "choose", "--n", "128", "--threads", "1", "2", "--cap", "500"
    )
    assert code == 0
    assert "best under 500.0 W" in out
    assert "openblas" in out


def test_choose_impossible_cap_exit_code(capsys):
    code, out, _ = run(
        capsys, "choose", "--n", "128", "--threads", "1", "--cap", "0.5"
    )
    assert code == 1
    assert "no configuration fits" in out


def test_crossover(capsys):
    code, out, _ = run(capsys, "crossover")
    assert code == 0
    assert "crossover n" in out
    assert "False" in out  # paper platform: unreachable


def test_bounds(capsys):
    code, out, _ = run(capsys, "bounds", "--n", "4096", "--procs", "49")
    assert code == 0
    assert "memory-dependent" in out or "memory-independent" in out


def test_sparse(capsys):
    code, out, _ = run(
        capsys, "sparse", "--pattern", "banded", "--n", "128", "--repeats", "2"
    )
    assert code == 0
    assert "CSR" in out and "BSR" in out


def test_distributed(capsys):
    code, out, _ = run(capsys, "distributed", "--n", "4096", "--nodes", "1", "4")
    assert code == 0
    assert "CAPS (dist)" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_parser_help_lists_subcommands():
    parser = build_parser()
    help_text = parser.format_help()
    for cmd in ("describe", "study", "choose", "crossover", "bounds", "sparse", "distributed"):
        assert cmd in help_text


def test_trace_command(capsys, tmp_path):
    out_path = tmp_path / "trace.json"
    code, out, _ = run(
        capsys, "trace", "--alg", "strassen", "--n", "256", "--threads", "2",
        "--out", str(out_path),
    )
    assert code == 0
    assert "core 0:" in out
    assert out_path.exists()
    import json

    data = json.loads(out_path.read_text())
    assert data["traceEvents"]


def test_trace_command_steal_policy(capsys):
    code, out, _ = run(capsys, "trace", "--alg", "caps", "--n", "128", "--policy", "steal")
    assert code == 0
    assert "Gflop/s" in out


def test_trace_unknown_algorithm(capsys):
    code, _, err = run(capsys, "trace", "--alg", "magma")
    assert code == 2
    assert "error" in err


def test_verify_command_clean(capsys):
    code, out, _ = run(capsys, "verify", "--cases", "5", "--seed", "0", "--quiet")
    assert code == 0
    assert "all invariants held" in out
    assert "rapl fault modes" in out


def test_verify_command_progress_lines(capsys):
    code, out, _ = run(capsys, "verify", "--cases", "25", "--seed", "1")
    assert code == 0
    assert "25/25 cases" in out


def test_verify_in_parser_help():
    parser = build_parser()
    assert "verify" in parser.format_help()
