"""CLI subcommands (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_describe(capsys):
    code, out, _ = run(capsys, "describe")
    assert code == 0
    assert "haswell-e3-1225" in out
    assert "204.8 Gflop/s" in out


def test_describe_custom_machine(capsys):
    code, out, _ = run(capsys, "describe", "--cores", "8", "--channels", "2")
    assert code == 0
    assert "generic-smp-8c" in out


def test_study_small(capsys):
    code, out, _ = run(
        capsys,
        "study",
        "--sizes", "128", "256",
        "--threads", "1", "2",
        "--execute-max-n", "0",
        "--no-verify",
    )
    assert code == 0
    assert "Table II" in out and "Table III" in out and "Table IV" in out
    assert "Strassen" in out and "CAPS" in out


def test_study_markdown_format(capsys):
    code, out, _ = run(
        capsys,
        "--format", "markdown",
        "study", "--sizes", "128", "--threads", "1",
        "--execute-max-n", "0", "--no-verify",
    )
    assert code == 0
    assert "| OpenBLAS |" in out


def test_choose_with_generous_cap(capsys):
    code, out, _ = run(
        capsys, "choose", "--n", "128", "--threads", "1", "2", "--cap", "500"
    )
    assert code == 0
    assert "best under 500.0 W" in out
    assert "openblas" in out


def test_choose_impossible_cap_exit_code(capsys):
    code, out, _ = run(
        capsys, "choose", "--n", "128", "--threads", "1", "--cap", "0.5"
    )
    assert code == 1
    assert "no configuration fits" in out


def test_crossover(capsys):
    code, out, _ = run(capsys, "crossover")
    assert code == 0
    assert "crossover n" in out
    assert "False" in out  # paper platform: unreachable


def test_bounds(capsys):
    code, out, _ = run(capsys, "bounds", "--n", "4096", "--procs", "49")
    assert code == 0
    assert "memory-dependent" in out or "memory-independent" in out


def test_sparse(capsys):
    code, out, _ = run(
        capsys, "sparse", "--pattern", "banded", "--n", "128", "--repeats", "2"
    )
    assert code == 0
    assert "CSR" in out and "BSR" in out


def test_distributed(capsys):
    code, out, _ = run(capsys, "distributed", "--n", "4096", "--nodes", "1", "4")
    assert code == 0
    assert "CAPS (dist)" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_parser_help_lists_subcommands():
    parser = build_parser()
    help_text = parser.format_help()
    for cmd in ("describe", "study", "choose", "crossover", "bounds", "sparse", "distributed"):
        assert cmd in help_text


def test_trace_command(capsys, tmp_path):
    out_path = tmp_path / "trace.json"
    code, out, _ = run(
        capsys, "trace", "--alg", "strassen", "--n", "256", "--threads", "2",
        "--out", str(out_path),
    )
    assert code == 0
    assert "core 0:" in out
    assert out_path.exists()
    import json

    data = json.loads(out_path.read_text())
    assert data["traceEvents"]


def test_trace_command_steal_policy(capsys):
    code, out, _ = run(capsys, "trace", "--alg", "caps", "--n", "128", "--policy", "steal")
    assert code == 0
    assert "Gflop/s" in out


def test_trace_unknown_algorithm(capsys):
    code, _, err = run(capsys, "trace", "--alg", "magma")
    assert code == 2
    assert "error" in err


def test_verify_command_clean(capsys):
    code, out, _ = run(capsys, "verify", "--cases", "5", "--seed", "0", "--quiet")
    assert code == 0
    assert "all invariants held" in out
    assert "rapl fault modes" in out


def test_verify_command_progress_lines(capsys):
    code, out, _ = run(capsys, "verify", "--cases", "25", "--seed", "1")
    assert code == 0
    assert "25/25 cases" in out


def test_verify_in_parser_help():
    parser = build_parser()
    assert "verify" in parser.format_help()
