"""Gantt rendering."""

import pytest

from repro.reporting.gantt import render_gantt
from repro.runtime.cost import TaskCost
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskGraph
from repro.util.errors import ValidationError


def test_render_shows_cores_and_utilization(machine):
    g = TaskGraph()
    for i in range(4):
        g.add(f"t{i}", TaskCost(flops=1e9))
    sched = Scheduler(machine, threads=2).run(g)
    out = render_gantt(sched, width=20)
    assert "core 0:" in out and "core 1:" in out
    assert "#" in out
    assert "2 threads" in out


def test_idle_core_shows_dots(machine):
    g = TaskGraph()
    g.add("only", TaskCost(flops=1e9))
    sched = Scheduler(machine, threads=2).run(g)
    out = render_gantt(sched, width=10)
    lines = out.splitlines()
    assert lines[2].endswith("." * 10)  # second core idle


def test_width_validation(machine):
    g = TaskGraph()
    g.add("t", TaskCost(flops=1e9))
    sched = Scheduler(machine, threads=1).run(g)
    with pytest.raises(ValidationError):
        render_gantt(sched, width=2)
