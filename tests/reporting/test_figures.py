"""Figure builders for the paper's figures."""

import pytest

from repro.core.study import EnergyPerformanceStudy, StudyConfig
from repro.reporting.figures import (
    Figure,
    fig1_schematic,
    fig3_figure,
    fig4_figure,
    fig5_figure,
    fig6_figure,
    fig7_figure,
)
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def study(machine):
    cfg = StudyConfig(sizes=(128, 256), threads=(1, 2), execute_max_n=0, verify=False)
    return EnergyPerformanceStudy(machine, config=cfg).run()


def test_fig1_schematic_regions():
    fig = fig1_schematic(max_parallelism=8)
    linear = dict(fig.series_values("linear threshold"))
    ideal = dict(fig.series_values("ideal"))
    superlinear = dict(fig.series_values("superlinear"))
    for p in range(2, 9):
        assert ideal[p] < linear[p] < superlinear[p]


def test_fig1_validation():
    with pytest.raises(ValidationError):
        fig1_schematic(max_parallelism=1)


def test_fig3(study):
    fig = fig3_figure(study)
    assert "Strassen n=128" in fig.series
    assert fig.name == "fig3"
    assert "slowdown" in fig.ylabel


@pytest.mark.parametrize(
    "builder,alg",
    [(fig4_figure, "OpenBLAS"), (fig5_figure, "Strassen"), (fig6_figure, "CAPS")],
)
def test_power_figures(study, builder, alg):
    fig = builder(study)
    assert alg in fig.title
    assert set(fig.series) == {"n=128", "n=256"}


def test_fig7(study):
    fig = fig7_figure(study)
    assert "linear threshold" in fig.series
    assert fig.series["linear threshold"][-1] == (2.0, 2.0)


def test_render_smoke(study):
    out = fig7_figure(study).render(width=40, height=10)
    assert "Fig. 7" in out
    assert "linear threshold" in out


def test_figure_missing_series(study):
    fig = fig3_figure(study)
    with pytest.raises(ValidationError):
        fig.series_values("nope")


def test_empty_figure_rejected():
    with pytest.raises(ValidationError):
        Figure("f", "t", {})


def test_fig2_traversal_schematic():
    from repro.reporting.figures import fig2_traversal

    text = fig2_traversal(depth=2)
    assert "DFS" in text and "BFS" in text
    assert text.count("M1 -> M2") == 2  # one per DFS level
    assert "CUTOFF_DEPTH" in text  # Algorithm 2
    with pytest.raises(ValidationError):
        fig2_traversal(depth=0)
