"""Chrome trace export."""

import json

import pytest

from repro.reporting.tracefile import schedule_to_trace_events, write_chrome_trace
from repro.runtime.cost import TaskCost
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskGraph
from repro.sim import Engine


@pytest.fixture()
def schedule(machine):
    g = TaskGraph("demo")
    a = g.add("work-a", TaskCost(flops=1e9))
    b = g.add("work-b", TaskCost(flops=2e9), deps=[a])
    g.join("sync", [b])
    return Scheduler(machine, threads=2, execute=False).run(g)


def test_events_cover_tasks(schedule):
    events = schedule_to_trace_events(schedule)
    slices = [e for e in events if e.get("ph") == "X"]
    assert {e["name"] for e in slices} == {"work-a", "work-b"}


def test_zero_cost_tasks_are_instants(schedule):
    events = schedule_to_trace_events(schedule)
    instants = [e for e in events if e.get("ph") == "i"]
    assert any(e["name"] == "sync" for e in instants)


def test_metadata_rows_per_core(schedule):
    events = schedule_to_trace_events(schedule)
    names = [e for e in events if e.get("ph") == "M" and e["name"] == "thread_name"]
    assert len(names) == 2


def test_timestamps_microseconds(schedule):
    events = schedule_to_trace_events(schedule)
    a = next(e for e in events if e.get("name") == "work-a")
    b = next(e for e in events if e.get("name") == "work-b")
    # b starts when a ends (dependency); durations are positive us.
    assert b["ts"] == pytest.approx(a["ts"] + a["dur"], rel=1e-6)
    assert a["dur"] > 0


def test_power_counter_track(machine, schedule):
    meas = Engine(machine).measure(schedule, label="x")
    events = schedule_to_trace_events(schedule, power=meas.trace, power_samples=8)
    counters = [e for e in events if e.get("ph") == "C"]
    assert len(counters) >= 4
    assert all("W" in e["args"] for e in counters)


def test_write_file_valid_json(schedule, tmp_path):
    path = write_chrome_trace(schedule, tmp_path / "trace.json")
    data = json.loads(path.read_text())
    assert "traceEvents" in data
    assert len(data["traceEvents"]) >= 4
