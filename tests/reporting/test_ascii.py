"""ASCII chart renderer."""

import pytest

from repro.reporting.ascii import AsciiChart
from repro.util.errors import ValidationError


def test_single_series_renders():
    chart = AsciiChart(width=30, height=8)
    out = chart.render({"a": [(1, 1), (2, 2), (3, 3)]}, title="T")
    assert "T" in out
    assert "o a" in out  # legend with marker


def test_markers_differ_per_series():
    chart = AsciiChart(width=30, height=8)
    out = chart.render({"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]})
    assert "o a" in out and "x b" in out
    assert "o" in out.split("b")[0]


def test_empty_rejected():
    with pytest.raises(ValidationError):
        AsciiChart().render({})
    with pytest.raises(ValidationError):
        AsciiChart().render({"a": []})


def test_axis_labels_present():
    out = AsciiChart(width=20, height=5).render(
        {"a": [(0, 0), (10, 40)]}, xlabel="threads", ylabel="watts"
    )
    assert "threads" in out
    assert "watts" in out
    assert "40" in out  # y max label
    assert "10" in out  # x max label


def test_canvas_size_respected():
    chart = AsciiChart(width=25, height=6)
    out = chart.render({"a": [(0, 0), (1, 1)]})
    plot_lines = [l for l in out.splitlines() if "|" in l]
    assert len(plot_lines) == 6


def test_constant_series_no_crash():
    out = AsciiChart().render({"flat": [(1, 5), (2, 5), (3, 5)]})
    assert "flat" in out
