"""Study serialization."""

import json

import pytest

from repro.core.study import EnergyPerformanceStudy, StudyConfig
from repro.reporting.emit import (
    study_to_dict,
    study_to_markdown,
    write_study_csv,
    write_study_json,
)


@pytest.fixture(scope="module")
def study(machine):
    cfg = StudyConfig(sizes=(128,), threads=(1, 2), execute_max_n=0, verify=False)
    return EnergyPerformanceStudy(machine, config=cfg).run()


def test_dict_structure(study):
    d = study_to_dict(study)
    assert d["machine"] == "haswell-e3-1225"
    assert len(d["runs"]) == 6
    run = d["runs"][0]
    assert {"algorithm", "n", "threads", "elapsed_s", "avg_package_w"} <= set(run)
    assert set(d["table2_avg_slowdown"]) == {"strassen", "caps"}


def test_dict_json_serializable(study):
    json.dumps(study_to_dict(study))


def test_markdown_contains_three_tables(study):
    md = study_to_markdown(study)
    assert md.count("## Table") == 3
    assert "OpenBLAS" in md


def test_write_csv(study, tmp_path):
    path = write_study_csv(study, tmp_path / "runs.csv")
    lines = path.read_text().strip().splitlines()
    assert lines[0].startswith("algorithm,")
    assert len(lines) == 7  # header + 6 runs


def test_write_json(study, tmp_path):
    path = write_study_json(study, tmp_path / "study.json")
    data = json.loads(path.read_text())
    assert data["sizes"] == [128]


class TestFrozenStudy:
    def test_roundtrip_matches_live_study(self, study, tmp_path):
        from repro.reporting.emit import load_study_json, write_study_json

        path = write_study_json(study, tmp_path / "s.json")
        frozen = load_study_json(path)
        assert frozen.machine_name == study.machine.name
        for alg in study.algorithm_names:
            for n in study.config.sizes:
                for p in study.config.threads:
                    assert frozen.time_s(alg, n, p) == pytest.approx(
                        study.time_s(alg, n, p)
                    )
                    assert frozen.ep(alg, n, p) == pytest.approx(study.ep(alg, n, p))
            assert frozen.avg_slowdown(alg) == pytest.approx(study.avg_slowdown(alg))

    def test_scaling_from_dump(self, study, tmp_path):
        from repro.reporting.emit import load_study_json, write_study_json

        frozen = load_study_json(write_study_json(study, tmp_path / "s.json"))
        pts = frozen.scaling_s("openblas", 128)
        assert pts[0] == (1, pytest.approx(1.0))

    def test_missing_keys_rejected(self):
        from repro.reporting.emit import FrozenStudy
        from repro.util.errors import ValidationError

        with pytest.raises(ValidationError):
            FrozenStudy({"machine": "x"})

    def test_missing_run_rejected(self, study, tmp_path):
        from repro.reporting.emit import load_study_json, write_study_json
        from repro.util.errors import ValidationError

        frozen = load_study_json(write_study_json(study, tmp_path / "s.json"))
        with pytest.raises(ValidationError):
            frozen.time_s("openblas", 9999, 1)
