#!/usr/bin/env python
"""Engine benchmark harness: measure, record, and gate performance.

Benchmarks the simulator's perf-critical paths with both scheduler
event kernels (``reference`` — the original scalar loop — and ``fast``
— the vectorized absolute-exhaust-time kernel), plus the build cache
and the trace-driven cache simulator:

``scheduler_wide2000``
    The 2000-task wide graph from ``benchmarks/test_engine_perf.py``,
    scheduled at four threads, best-of-*repeats* per engine.
``matrix_cost48``
    The paper's full 48-cell execution matrix (3 algorithms x sizes
    {512..4096} x threads {1..4}), simulated cost-only, per engine.
``compiled``
    The same 48-cell matrix as pure scheduler sweeps (no measurement
    pipeline), fast versus the JIT-compiled C kernel.  Arenas, plan
    bundles and the JIT cache are warmed before timing, so the gated
    ``ratio`` (fast/compiled wall time) isolates the event sweep the
    compiled engine replaces; it must stay above the absolute
    ``COMPILED_FLOOR`` (3x).  The compiled wall time is small enough
    that run-to-run noise dominates the ratio, so this section is not
    held to the baseline-relative tolerance.
``lowering_cache``
    Strassen lowering cold (``build``) versus a warm ``build_cached``
    hit — the cost a protocol repetition or sweep re-run avoids.
``cache_sim64k``
    A 64 KiB stride-64 stream through the 3-level LRU hierarchy
    (engine-independent; guards the cache-sim hot path).
``graph_build``
    Cold lowering of the whole execution matrix: the object-graph
    recursion versus the templated columnar arena path (fresh
    algorithm instances per pass, so subtree-template memos start
    cold), plus ``tracemalloc`` peak lowering memory at the largest
    problem size for both representations.
``study_parallel``
    Parallel-study dispatch: per-cell bytes crossing the pickle
    boundary under the shared-memory transport (an
    ``ArenaDescriptor``) versus the pickling transport (the arena's
    columns), at the largest benchmarked size — plus the wall time of
    a small parallel study under each transport.  The gated
    ``bytes_ratio`` (pickled column bytes / descriptor bytes) is the
    communication-avoidance headline: it must stay >= 100x at
    n >= 1024.
``network_sim``
    The discrete-event network simulator on a thousand-rank 2.5D SUMMA
    schedule (torus topology, c=2): the arena-lowered vectorized
    earliest-finish sweep versus the per-rank Python-object loop over
    the same event program.  Both produce bit-identical results (the
    ``network_sim`` verify family asserts it); the gated ``ratio``
    (object/arena wall time) must stay above the absolute
    ``NETWORK_FLOOR`` (3x) — per-rank Python objects must never be the
    hot path for P-sweeps.
``study_service``
    The async study service under load: 100 overlapping concurrent
    requests for the same cost-only grid (single-flight dedup must
    collapse them to one computation per unique cell), then a burst of
    sequential hot-cell lookups against the warmed content-addressed
    store.  Two *absolute* gates: ``dedup_ratio`` (cells requested /
    cells computed) must stay >= 2x, and ``hot_ms`` (mean store-served
    lookup) must stay under 1 ms.

Host wall-clock numbers are machine-specific, so the regression gate
compares *ratios* (reference/fast, cold/hit), which are stable across
hosts.  ``--smoke`` runs reduced-size variants and fails when any
gated ratio regresses more than 25% against the committed baseline.

Run:
  python tools/bench.py                  # full suite, print table
  python tools/bench.py --write          # full + smoke, update BENCH_engine.json
  python tools/bench.py --smoke          # quick gate against BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms import StrassenWinograd
from repro.algorithms.registry import BuildCache
from repro.machine import haswell_e3_1225
from repro.machine.cache import CacheHierarchySim, CacheHierarchySpec
from repro.core.study import EnergyPerformanceStudy, StudyConfig
from repro.runtime.cost import TaskCost
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskGraph
from repro.sim.engine import Engine

DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Ratios gated by ``--smoke``: benchmark name -> ratio field.
#: ``compiled`` is deliberately absent: its denominator is a few tens
#: of milliseconds, so run-to-run noise swings the ratio far more than
#: the 25% tolerance — it gets the absolute ``COMPILED_FLOOR`` gate
#: below instead.
GATED = {
    "scheduler_wide2000": "ratio",
    "matrix_cost": "ratio",
    "lowering_cache": "ratio",
    "graph_build": "ratio",
    "study_parallel": "bytes_ratio",
}
#: Allowed regression before the gate fails (fraction of baseline).
TOLERANCE = 0.25

#: Hard ceiling on the estimated tracing-disabled overhead of the gated
#: sections, in percent of section wall time.  Absolute (no baseline):
#: the disabled path is one global load + ``is None`` test per span
#: site, so the estimate must stay small on any host.
OVERHEAD_LIMIT_PCT = 2.0

#: Absolute floor on the compiled engine's speedup over the fast
#: kernel across the execution-matrix sweeps (JIT warm-up excluded).
COMPILED_FLOOR = 3.0

#: Absolute floor on the arena-lowered network sweep's speedup over the
#: per-rank object loop at thousand-rank scale (lowering excluded: both
#: engines consume the same pre-built event program).
NETWORK_FLOOR = 3.0

#: Absolute gates on the study service (no baseline needed): a
#: store-served cell lookup must average under this many milliseconds,
#: and overlapping identical requests must dedup at least this much.
HOT_LOOKUP_LIMIT_MS = 1.0
DEDUP_FLOOR = 2.0


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best


def _wide_graph(tasks: int = 2000) -> TaskGraph:
    g = TaskGraph(f"wide{tasks}")
    for i in range(tasks):
        g.add(f"t{i}", TaskCost(flops=1e8, bytes_dram=1e5))
    return g


def bench_scheduler(machine, repeats: int) -> dict:
    """Wide-graph scheduler throughput, reference vs fast."""
    graph = _wide_graph(2000)
    out = {}
    for engine in ("reference", "fast"):
        sched = Scheduler(machine, threads=4, execute=False, engine=engine)
        out[f"{engine}_ms"] = _best_of(lambda: sched.run(graph), repeats) * 1e3
    out["ratio"] = out["reference_ms"] / out["fast_ms"]
    out["repeats"] = repeats
    return out


def bench_matrix(machine, sizes: tuple[int, ...]) -> dict:
    """The execution matrix, simulated cost-only, reference vs fast."""
    out = {"sizes": list(sizes)}
    for engine in ("reference", "fast"):
        cfg = StudyConfig(sizes=sizes, execute_max_n=0)
        study = EnergyPerformanceStudy(
            machine, config=cfg, _engine=Engine(machine, engine=engine)
        )
        t0 = time.perf_counter()
        result = study.run()
        out[f"{engine}_s"] = time.perf_counter() - t0
        out["cells"] = len(result.runs)
    out["ratio"] = out["reference_s"] / out["fast_s"]
    return out


def bench_compiled(machine, sizes: tuple[int, ...], repeats: int) -> dict:
    """Execution-matrix scheduler sweeps, fast vs the compiled C kernel.

    Every cell of the matrix is lowered once up front and each engine
    runs a full warm-up pass (plan bundles cached on the arenas, kernel
    JIT-compiled via :func:`warm_compile`), so the timed sweeps compare
    only the event kernels themselves — the paper-study work the
    compiled engine accelerates.  Per-cell ``Scheduler.run`` only; the
    measurement pipeline is identical across engines and excluded.
    """
    from repro.algorithms.registry import paper_algorithms
    from repro.runtime.compiledpath import compiled_available, warm_compile

    ok, reason = compiled_available()
    if not ok:
        return {"available": False, "reason": reason, "ratio": 0.0}
    warm_compile()  # JIT compile excluded from the timings
    threads = (1, 2, 3, 4)
    cells = []
    for alg in paper_algorithms(machine):
        for n in sizes:
            for p in threads:
                build = alg.build_arena(n, p)
                if build is None:
                    build = alg.build(n, p, execute=False)
                cells.append((build.graph, p))
    out = {"sizes": list(sizes), "cells": len(cells), "available": True}
    scheds = {
        engine: {
            p: Scheduler(machine, threads=p, execute=False, engine=engine)
            for p in threads
        }
        for engine in ("fast", "compiled")
    }

    def sweep(engine: str) -> None:
        table = scheds[engine]
        for graph, p in cells:
            table[p].run(graph)

    sweep("fast")  # warm both engines' per-arena plan caches
    sweep("compiled")
    reps = min(repeats, 3)
    out["fast_s"] = _best_of(lambda: sweep("fast"), reps)
    out["compiled_s"] = _best_of(lambda: sweep("compiled"), reps)
    out["ratio"] = out["fast_s"] / out["compiled_s"]
    return out


def bench_lowering_cache(machine, n: int, repeats: int) -> dict:
    """Cold Strassen lowering vs a warm build-cache hit."""
    alg = StrassenWinograd(machine)
    cache = BuildCache()
    cold = _best_of(lambda: alg.build(n, 4, seed=0, execute=False), repeats)
    alg.build_cached(n, 4, seed=0, execute=False, cache=cache)  # warm

    # A cache hit is sub-microsecond — below what one perf_counter pair
    # resolves reliably — so time a batch of hits per sample.
    def hit_batch():
        for _ in range(100):
            alg.build_cached(n, 4, seed=0, execute=False, cache=cache)

    hit = _best_of(hit_batch, max(repeats, 5)) / 100
    return {
        "n": n,
        "cold_ms": cold * 1e3,
        "hit_ms": hit * 1e3,
        "ratio": cold / hit if hit > 0 else float("inf"),
    }


def bench_graph_build(
    machine,
    sizes: tuple[int, ...],
    repeats: int,
    threads: tuple[int, ...] = (1, 2, 3, 4),
) -> dict:
    """Cold execution-matrix lowering: object recursion vs templated
    arena, plus peak lowering memory at the largest size.

    Each timed pass starts from *fresh* algorithm instances so the
    arena path pays its subtree-template construction (the realistic
    cold cost a study's first lowering of each cell sees); within a
    pass templates amortize across cells exactly as they do in
    production (one algorithm instance lowers every cell).
    """
    import tracemalloc

    from repro.algorithms.registry import paper_algorithms

    def build_matrix(arena: bool) -> None:
        for alg in paper_algorithms(machine):  # fresh = cold memos
            for n in sizes:
                for p in threads:
                    if arena:
                        build = alg.build_arena(n, p)
                        if build is None:  # no columnar path
                            alg.build(n, p, execute=False)
                    else:
                        alg.build(n, p, execute=False)

    reps = min(repeats, 3)  # a full object pass is seconds, not ms
    out = {
        "sizes": list(sizes),
        "cells": 3 * len(sizes) * len(threads),
        "object_s": _best_of(lambda: build_matrix(False), reps),
        "arena_s": _best_of(lambda: build_matrix(True), reps),
    }
    out["ratio"] = out["object_s"] / out["arena_s"]

    n_big = max(sizes)

    def peak_bytes(arena: bool) -> int:
        alg = StrassenWinograd(machine)
        tracemalloc.start()
        try:
            if arena:
                graph = alg.build_arena(n_big, 4).graph
            else:
                graph = alg.build(n_big, 4, execute=False).graph
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        del graph
        return peak

    out["object_peak_mb"] = peak_bytes(False) / 2**20
    out["arena_peak_mb"] = peak_bytes(True) / 2**20
    out["mem_ratio"] = (
        out["object_peak_mb"] / out["arena_peak_mb"]
        if out["arena_peak_mb"] > 0
        else float("inf")
    )
    return out


def bench_study_parallel(machine, sizes: tuple[int, ...], workers: int = 2) -> dict:
    """Parallel-study dispatch overhead: shm descriptors vs pickling.

    ``pickle_bytes``/``descriptor_bytes`` measure what one cell of the
    largest benchmarked size actually ships across the process-pool
    pickle boundary under each transport; ``bytes_ratio`` is their
    quotient (gated — the whole point of the shm transport is that it
    stays large and grows with n).  ``shm_s``/``pickle_s`` time a small
    cost-only parallel study end to end under each forced transport.
    """
    import pickle

    from repro.core.study import _ShmBuild
    from repro.runtime.shm import ArenaPool

    n_big = max(sizes)
    alg = StrassenWinograd(machine)
    build = alg.build_arena(n_big, 4)
    arena = build.graph
    out = {"n": n_big, "pickle_bytes": len(pickle.dumps(arena))}
    with ArenaPool() as pool:
        descriptor = arena.to_shm(pool)
        shipped = _ShmBuild(
            descriptor=descriptor,
            n=build.n,
            variant=build.variant,
            cutoff=build.cutoff,
        )
        out["descriptor_bytes"] = len(pickle.dumps(shipped))
    out["bytes_ratio"] = out["pickle_bytes"] / out["descriptor_bytes"]

    bench_sizes = tuple(s for s in sizes if s <= 1024) or (min(sizes),)
    cfg = StudyConfig(sizes=bench_sizes, execute_max_n=0, verify=False)
    for transport in ("shm", "pickle"):
        study = EnergyPerformanceStudy(
            machine, config=cfg, _engine=Engine(machine, engine="fast")
        )
        t0 = time.perf_counter()
        result = study._run(workers, transport=transport)
        out[f"{transport}_s"] = time.perf_counter() - t0
        out["cells"] = len(result.runs)
    out["workers"] = workers
    return out


def bench_network_sim(machine, smoke: bool, repeats: int) -> dict:
    """Thousand-rank event sweep: arena engine vs per-rank object loop.

    One 2.5D SUMMA schedule (torus2d, c=2) is lowered once; both
    engines then sweep the *same* event program, so the gated ``ratio``
    isolates the earliest-finish recurrence the arena lowering
    vectorizes.  2048 ranks full / 512 smoke — at trivial rank counts
    the object loop wins (vectorization overhead), which is exactly why
    the gate pins the thousand-rank regime the sweeps run at.
    """
    from repro.distributed import ClusterSpec, NetworkConfig, Topology, build_events

    cluster = ClusterSpec(node=machine, topology=Topology("torus2d"))
    cfg = NetworkConfig(c=2)
    ranks = 512 if smoke else 2048
    n = 16384
    t0 = time.perf_counter()
    prog = build_events(cluster, "summa25d", n, ranks, cfg)
    lower_s = time.perf_counter() - t0
    reps = min(repeats, 5)
    out = {
        "algorithm": "summa25d",
        "n": n,
        "ranks": ranks,
        "events": prog.n_events,
        "lower_ms": lower_s * 1e3,
        "events_ms": _best_of(lambda: prog.simulate("events"), reps) * 1e3,
        "ranks_ms": _best_of(lambda: prog.simulate("ranks"), min(reps, 3)) * 1e3,
    }
    out["ratio"] = out["ranks_ms"] / out["events_ms"]
    return out


def bench_study_service(machine, smoke: bool, requests: int = 100) -> dict:
    """The service under overlapping load, then hot-lookup latency.

    *requests* identical study queries are launched concurrently on one
    event loop against a fresh service + store: single-flight dedup
    must compute each unique cell exactly once (``dedup_ratio`` =
    requested/computed, gated >= ``DEDUP_FLOOR``).  The grid is
    cost-only so the benchmark times coordination, not numerics.  With
    the store warm, a burst of sequential single-cell queries measures
    the store-served path end to end — key derivation, LRU hit, result
    assembly — per lookup (``hot_ms``, gated < ``HOT_LOOKUP_LIMIT_MS``).
    """
    import asyncio
    import tempfile

    from repro.observability.metrics import registry
    from repro.service import StudyRequest, StudyService

    sizes = (128,) if smoke else (256,)
    req = StudyRequest(
        ("openblas", "strassen", "caps"), sizes, threads=(1, 2, 3, 4),
        execute_max_n=0,
    )
    specs = req.cells()
    lookups = 200

    async def drive(store):
        async with StudyService(machine, store=store) as svc:
            snap = registry().snapshot()
            t0 = time.perf_counter()
            await asyncio.gather(*(svc.query(req) for _ in range(requests)))
            cold_s = time.perf_counter() - t0
            delta = registry().delta_since(snap)
            t0 = time.perf_counter()
            for i in range(lookups):
                await svc.query_cell(specs[i % len(specs)])
            hot_s = time.perf_counter() - t0
        return cold_s, delta, hot_s

    with tempfile.TemporaryDirectory() as tmp:
        cold_s, delta, hot_s = asyncio.run(drive(tmp))

    requested = delta.get("service.cells_requested", 0)
    computed = delta.get("service.cells_computed", 0)
    return {
        "requests": requests,
        "cells_per_request": len(specs),
        "cold_s": cold_s,
        "cells_requested": int(requested),
        "cells_computed": int(computed),
        "dedup_ratio": requested / computed if computed else float("inf"),
        "hot_lookups": lookups,
        "hot_ms": hot_s / lookups * 1e3,
    }


def bench_trace_overhead(machine, repeats: int, sizes: tuple[int, ...]) -> dict:
    """Estimated cost of *disabled* tracing on the gated sections.

    Two measurements compose the estimate: the per-call cost of the
    disabled ``trace.span()`` fast path (a global load plus ``is
    None``), and the number of span sites each gated workload passes
    through (counted by running it once under a live tracer).  The
    product over the section's wall time is the worst-case relative
    overhead instrumentation adds when tracing is off; the smoke gate
    asserts it stays under ``OVERHEAD_LIMIT_PCT``.
    """
    from repro.algorithms.registry import paper_algorithms
    from repro.observability import trace as obtrace

    calls = 200_000
    span = obtrace.span

    def spin():
        for _ in range(calls):
            span("overhead-probe")

    per_call_s = _best_of(spin, repeats) / calls

    graph = _wide_graph(2000)
    sched = Scheduler(machine, threads=4, execute=False, engine="fast")
    with obtrace.tracing() as tr:
        sched.run(graph)
    sched_spans = len(tr)
    sched_s = _best_of(lambda: sched.run(graph), repeats)

    def build_matrix():
        for alg in paper_algorithms(machine):
            for n in sizes:
                for p in (1, 2, 3, 4):
                    if alg.build_arena(n, p) is None:
                        alg.build(n, p, execute=False)

    with obtrace.tracing() as tr:
        build_matrix()
    build_spans = len(tr)
    build_s = _best_of(build_matrix, min(repeats, 3))

    out = {
        "per_call_ns": per_call_s * 1e9,
        "scheduler_spans": sched_spans,
        "scheduler_pct": 100.0 * sched_spans * per_call_s / sched_s,
        "graph_build_spans": build_spans,
        "graph_build_pct": 100.0 * build_spans * per_call_s / build_s,
    }
    out["max_pct"] = max(out["scheduler_pct"], out["graph_build_pct"])
    return out


def bench_cache_sim(repeats: int) -> dict:
    """64 KiB stride-64 stream through the LRU hierarchy."""
    spec = CacheHierarchySpec.haswell_like()

    def stream():
        sim = CacheHierarchySim(spec)
        sim.access_range(0, 64 * 1024, stride=64)

    return {"stream_ms": _best_of(stream, repeats) * 1e3}


def run_suite(smoke: bool) -> dict:
    machine = haswell_e3_1225()
    if smoke:
        repeats, sizes, cache_n = 5, (512, 1024), 256
    else:
        repeats, sizes, cache_n = 9, (512, 1024, 2048, 4096), 512
    return {
        "scheduler_wide2000": bench_scheduler(machine, repeats),
        "matrix_cost": bench_matrix(machine, sizes),
        "compiled": bench_compiled(machine, sizes, repeats),
        "lowering_cache": bench_lowering_cache(machine, cache_n, repeats),
        "cache_sim64k": bench_cache_sim(repeats),
        "graph_build": bench_graph_build(machine, sizes, repeats),
        "study_parallel": bench_study_parallel(machine, sizes),
        "network_sim": bench_network_sim(machine, smoke, repeats),
        "study_service": bench_study_service(machine, smoke),
        "trace_overhead": bench_trace_overhead(machine, repeats, sizes),
    }


def print_suite(name: str, suite: dict) -> None:
    print(f"== {name} ==")
    for bench, fields in suite.items():
        parts = []
        for key, value in fields.items():
            if isinstance(value, float):
                parts.append(f"{key}={value:.3f}")
            else:
                parts.append(f"{key}={value}")
        print(f"  {bench:20s} " + "  ".join(parts))


def gate(current: dict, baseline: dict) -> int:
    """Compare gated ratios against the baseline; 0 = pass."""
    failures = []
    for bench, field in GATED.items():
        base = baseline.get(bench, {}).get(field)
        now = current.get(bench, {}).get(field)
        if base is None or now is None:
            failures.append(f"{bench}: missing {field} (base={base}, now={now})")
            continue
        floor = base * (1.0 - TOLERANCE)
        status = "ok" if now >= floor else "REGRESSION"
        print(
            f"  {bench:20s} {field}: now {now:.2f}x vs baseline {base:.2f}x "
            f"(floor {floor:.2f}x) {status}"
        )
        if now < floor:
            failures.append(
                f"{bench}: {field} {now:.2f}x < floor {floor:.2f}x "
                f"(baseline {base:.2f}x, tolerance {TOLERANCE:.0%})"
            )
    comp = current.get("compiled", {})
    cratio = comp.get("ratio")
    if cratio is None:
        failures.append("compiled: missing ratio")
    elif not comp.get("available", False):
        failures.append(
            f"compiled: engine unavailable on this host "
            f"({comp.get('reason', '?')}); cannot verify the "
            f"{COMPILED_FLOOR:.0f}x floor"
        )
    else:
        status = "ok" if cratio >= COMPILED_FLOOR else "TOO SLOW"
        print(
            f"  {'compiled':20s} ratio: {cratio:.2f}x compiled speedup over "
            f"fast on the matrix sweeps (floor {COMPILED_FLOOR:.1f}x) {status}"
        )
        if cratio < COMPILED_FLOOR:
            failures.append(
                f"compiled: speedup {cratio:.2f}x below the absolute "
                f"{COMPILED_FLOOR:.1f}x floor"
            )
    netsim = current.get("network_sim", {})
    nratio = netsim.get("ratio")
    if nratio is None:
        failures.append("network_sim: missing ratio")
    else:
        status = "ok" if nratio >= NETWORK_FLOOR else "TOO SLOW"
        print(
            f"  {'network_sim':20s} ratio: {nratio:.2f}x arena-engine speedup "
            f"over the per-rank object loop at P={netsim.get('ranks', '?')} "
            f"(floor {NETWORK_FLOOR:.1f}x) {status}"
        )
        if nratio < NETWORK_FLOOR:
            failures.append(
                f"network_sim: arena speedup {nratio:.2f}x below the "
                f"absolute {NETWORK_FLOOR:.1f}x floor"
            )
    overhead = current.get("trace_overhead", {}).get("max_pct")
    if overhead is None:
        failures.append("trace_overhead: missing max_pct")
    else:
        status = "ok" if overhead <= OVERHEAD_LIMIT_PCT else "TOO HIGH"
        print(
            f"  {'trace_overhead':20s} max_pct: {overhead:.3f}% disabled-"
            f"tracing overhead (limit {OVERHEAD_LIMIT_PCT:.1f}%) {status}"
        )
        if overhead > OVERHEAD_LIMIT_PCT:
            failures.append(
                f"trace_overhead: estimated disabled-tracing overhead "
                f"{overhead:.3f}% exceeds {OVERHEAD_LIMIT_PCT:.1f}%"
            )
    service = current.get("study_service", {})
    hot_ms = service.get("hot_ms")
    dedup = service.get("dedup_ratio")
    if hot_ms is None or dedup is None:
        failures.append("study_service: missing hot_ms/dedup_ratio")
    else:
        status = "ok" if hot_ms <= HOT_LOOKUP_LIMIT_MS else "TOO SLOW"
        print(
            f"  {'study_service':20s} hot_ms: {hot_ms:.4f} ms store-served "
            f"lookup (limit {HOT_LOOKUP_LIMIT_MS:.1f} ms) {status}"
        )
        if hot_ms > HOT_LOOKUP_LIMIT_MS:
            failures.append(
                f"study_service: hot lookup {hot_ms:.4f} ms exceeds "
                f"{HOT_LOOKUP_LIMIT_MS:.1f} ms"
            )
        status = "ok" if dedup >= DEDUP_FLOOR else "TOO LOW"
        print(
            f"  {'study_service':20s} dedup_ratio: {dedup:.1f}x under "
            f"{service.get('requests', '?')} overlapping requests "
            f"(floor {DEDUP_FLOOR:.1f}x) {status}"
        )
        if dedup < DEDUP_FLOOR:
            failures.append(
                f"study_service: dedup ratio {dedup:.1f}x below floor "
                f"{DEDUP_FLOOR:.1f}x"
            )
    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nPASS: no gated ratio regressed more than "
          f"{TOLERANCE:.0%} vs baseline")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="quick reduced suite, gate vs the baseline JSON")
    ap.add_argument("--write", action="store_true",
                    help="run full + smoke suites and update the baseline JSON")
    ap.add_argument("--json", type=Path, default=DEFAULT_JSON,
                    help=f"baseline path (default {DEFAULT_JSON.name})")
    args = ap.parse_args()

    if args.smoke:
        suite = run_suite(smoke=True)
        print_suite("smoke", suite)
        if not args.json.exists():
            print(f"\nno baseline at {args.json}; nothing to gate against")
            return 1
        baseline = json.loads(args.json.read_text())
        print(f"\ngating vs {args.json.name} "
              f"(recorded {baseline['meta'].get('date', '?')}):")
        return gate(suite, baseline.get("smoke", {}))

    full = run_suite(smoke=False)
    print_suite("full", full)
    if args.write:
        smoke = run_suite(smoke=True)
        print_suite("smoke", smoke)
        from repro.runtime.compiledpath import compiled_cc
        from repro.runtime.scheduler import ENGINES

        try:
            import numba  # noqa: F401 - presence probe only

            numba_version = numba.__version__
        except ImportError:
            numba_version = None
        payload = {
            "meta": {
                "date": time.strftime("%Y-%m-%d"),
                "python": platform.python_version(),
                "machine": platform.machine(),
                "engines": list(ENGINES),
                "cc": compiled_cc(),
                "numba": numba_version,
                "note": (
                    "Wall-clock fields are host-specific; only the "
                    "reference/fast and cold/hit ratios are gated."
                ),
            },
            "full": full,
            "smoke": smoke,
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
