#!/usr/bin/env python
"""Standalone entry point for the property-based correctness harness.

Thin wrapper over ``python -m repro verify`` for environments that run
tools out of a checkout without installing the package::

    python tools/verify.py --cases 200 --seed 0

Every random case is a pure function of ``seed + index``, so a failure
reported as *seed S* reproduces exactly with::

    python tools/verify.py --cases 1 --seed S

Exit status: 0 when every invariant held, 1 when counterexamples were
found (each printed with its shrunk case and reproduction command),
2 on configuration errors.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["verify", *sys.argv[1:]]))
