#!/usr/bin/env python
"""Offline viewer/validator for the observability Chrome-trace files.

Reads a trace written by ``repro study --trace OUT.json`` (or
``repro.api.StudyRun.write_trace``), prints the run metadata, the
phase-summary table and the metrics dump, and optionally validates it::

  python tools/trace.py out.json               # summarize
  python tools/trace.py out.json --validate    # schema + wall-time check

``--validate`` fails (exit 1) when:

* the document violates the Chrome ``trace_event`` schema
  (``repro.observability.export.validate_chrome_trace``), or
* the run was serial and the per-cell span durations do not sum to the
  recorded study wall time within ``--tol`` (default 1%) — the
  "nothing escaped attribution" invariant.  Parallel runs skip the sum
  check: concurrent cells legitimately overlap, so their rebased
  durations sum to more than the wall clock.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import argparse

from repro.cliargs import add_format_arg, emit, get_format
from repro.observability.export import (
    events_to_spans,
    metrics_table,
    phase_table,
    read_trace_json,
    validate_chrome_trace,
)
from repro.util.errors import ReproError


def validate(data: dict, tol: float) -> list[str]:
    """All problems with the document (empty list = valid)."""
    problems = validate_chrome_trace(data)
    meta = data.get("otherData", {}).get("meta", {})
    wall_s = meta.get("wall_s")
    parallel = meta.get("parallel", 0)
    spans = events_to_spans(data)
    # The attribution invariant is the dense study driver's: every
    # wall second of a serial study.run is inside some cell span.
    # Other commands (sparse format conversion, distributed setup) do
    # legitimate work outside cells and only get the schema check.
    is_study = any(sp.name == "study.run" and sp.depth == 0 for sp in spans)
    if wall_s and parallel <= 1 and is_study:
        cells = [
            sp for sp in spans if sp.name == "cell" and sp.depth == 1
        ]
        if cells:
            cell_sum = sum(sp.duration_s for sp in cells)
            rel = abs(cell_sum - wall_s) / wall_s
            if rel > tol:
                problems.append(
                    f"serial cell spans sum to {cell_sum:.6f}s but the "
                    f"study wall time is {wall_s:.6f}s "
                    f"({100 * rel:.2f}% off, tolerance {100 * tol:.2f}%)"
                )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("file", help="trace JSON written with --trace")
    add_format_arg(ap, top_level=True)
    ap.add_argument("--validate", action="store_true",
                    help="schema + wall-time attribution checks; exit 1 on failure")
    ap.add_argument("--tol", type=float, default=0.01,
                    help="relative tolerance for the serial cell-sum check")
    ap.add_argument("--depth", type=int, default=1,
                    help="max span depth in the phase summary")
    args = ap.parse_args(argv)

    try:
        data = read_trace_json(args.file)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    other = data.get("otherData", {})
    meta = other.get("meta", {})
    spans = events_to_spans(data)
    fmt = get_format(args)

    print(f"{args.file}: {len(spans)} spans")
    for key in sorted(meta):
        print(f"  {key}: {meta[key]}")
    print()
    print("phase summary:")
    print(emit(phase_table(spans, max_depth=args.depth), fmt))
    metrics = other.get("metrics", {})
    if metrics:
        print()
        print("metrics:")
        print(emit(metrics_table(metrics), fmt))

    if args.validate:
        problems = validate(data, args.tol)
        if problems:
            print()
            for p in problems:
                print(f"FAIL: {p}")
            return 1
        print()
        print("trace is valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
