#!/usr/bin/env python
"""Regenerate the paper-vs-measured comparison behind EXPERIMENTS.md.

Runs the full execution matrix (or a reduced one with --quick), compares
every headline quantity against the paper's published values and prints
a markdown report.  Use after changing cost models or calibration to see
exactly which claims moved.

Run:  python tools/make_experiments_report.py [--quick] [--out FILE]
"""

import argparse
import sys
import time

from repro import EnergyPerformanceStudy, StudyConfig, haswell_e3_1225
from repro.core import analyze_crossover
from repro.core.scaling import ScalingClass
from repro.sim.calibration import PAPER_TARGETS, score_study

PAPER_TABLE2 = {
    "strassen": {512: 2.872, 1024: 3.477, 2048: 2.874, 4096: 2.637, "avg": 2.965},
    "caps": {512: 2.840, 1024: 2.942, 2048: 2.809, 4096: 2.561, "avg": 2.788},
}
PAPER_TABLE3 = PAPER_TARGETS.power_by_threads


def fmt_delta(measured, paper):
    delta = 100.0 * (measured - paper) / paper
    return f"{measured:.3f} | {paper:.3f} | {delta:+.1f}%"


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--quick", action="store_true", help="sizes 512/1024 only")
    ap.add_argument("--out", default=None, help="write the report here too")
    args = ap.parse_args()

    machine = haswell_e3_1225()
    sizes = (512, 1024) if args.quick else (512, 1024, 2048, 4096)
    config = StudyConfig(sizes=sizes, execute_max_n=0, verify=False)
    t0 = time.time()
    result = EnergyPerformanceStudy(machine, config=config).run()
    wall = time.time() - t0

    lines = [
        "# Paper-vs-measured report",
        "",
        f"matrix: sizes {list(sizes)} x threads {list(config.threads)}; "
        f"{wall:.1f}s simulated wall; calibration loss "
        f"{score_study(result):.4f}",
        "",
        "## Table II — average slowdown (measured | paper | delta)",
        "",
        "| algorithm | " + " | ".join(str(n) for n in sizes) + " | average |",
        "|" + "---|" * (len(sizes) + 2),
    ]
    for alg in ("strassen", "caps"):
        by_size = result.avg_slowdown_by_size(alg)
        cells = [fmt_delta(by_size[n], PAPER_TABLE2[alg][n]) for n in sizes]
        cells.append(fmt_delta(result.avg_slowdown(alg), PAPER_TABLE2[alg]["avg"]))
        lines.append(f"| {alg} | " + " | ".join(cells) + " |")

    lines += ["", "## Table III — watts by thread count (measured | paper | delta)", ""]
    lines.append("| algorithm | P=1 | P=2 | P=3 | P=4 |")
    lines.append("|---|---|---|---|---|")
    for alg, paper_row in PAPER_TABLE3.items():
        watts = result.avg_power_by_threads(alg)
        cells = [fmt_delta(watts[p], paper_row[p - 1]) for p in (1, 2, 3, 4)]
        lines.append(f"| {alg} | " + " | ".join(cells) + " |")

    lines += ["", "## Fig. 7 — scaling classes at P=4", ""]
    lines.append("| algorithm | size | S | class | paper expectation |")
    lines.append("|---|---|---|---|---|")
    expectations = {
        "openblas": ("superlinear", lambda c: c is ScalingClass.SUPERLINEAR),
        "strassen": ("ideal/linear", lambda c: c is not ScalingClass.SUPERLINEAR),
        "caps": ("near linear", lambda c: True),
    }
    ok = True
    for alg in result.algorithm_names:
        for n in sizes:
            pt = result.scaling_curve(alg, n)[-1]
            want, check = expectations[alg]
            verdict = "OK" if check(pt.scaling_class) else "**MISMATCH**"
            ok = ok and check(pt.scaling_class)
            lines.append(
                f"| {alg} | {n} | {pt.s:.2f} | {pt.scaling_class.value} "
                f"| {want} {verdict} |"
            )

    analysis = analyze_crossover(machine)
    lines += [
        "",
        "## Eq. 9 crossover",
        "",
        f"crossover n = {analysis.crossover_n:.0f}, max feasible n = "
        f"{analysis.max_feasible_n}, reachable = {analysis.reachable} "
        f"(paper: unreachable)",
    ]

    report = "\n".join(lines)
    print(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
    return 0 if ok and not analysis.reachable else 1


if __name__ == "__main__":
    sys.exit(main())
