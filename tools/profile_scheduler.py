#!/usr/bin/env python
"""Profile the simulator's hot paths (the optimization-guide workflow:
no optimization without measuring).

Runs cProfile over a representative workload — Strassen at n=2048, four
threads — and prints the top functions by cumulative time, so changes to
the scheduler or cost models can be checked for regressions.

Run:  python tools/profile_scheduler.py [--n 2048] [--top 15]
"""

import argparse
import cProfile
import pstats
import io

from repro.machine import haswell_e3_1225
from repro.algorithms import StrassenWinograd
from repro.sim import Engine


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--n", type=int, default=2048)
    ap.add_argument("--threads", type=int, default=4)
    ap.add_argument("--top", type=int, default=15)
    args = ap.parse_args()

    machine = haswell_e3_1225()
    alg = StrassenWinograd(machine)
    build = alg.build(args.n, args.threads, execute=False)
    engine = Engine(machine)
    print(f"profiling: strassen n={args.n}, {len(build.graph)} tasks\n")

    profiler = cProfile.Profile()
    profiler.enable()
    measurement = engine.run(build.graph, args.threads, execute=False)
    profiler.disable()

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(args.top)
    print(stream.getvalue())
    print(measurement.summary())


if __name__ == "__main__":
    main()
