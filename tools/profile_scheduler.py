#!/usr/bin/env python
"""Deprecated shim: this grew into ``tools/profile.py``.

The old behavior (cProfile over the event kernel on a Strassen object
graph) is exactly ``--phase sim --graph object``; the new tool also
profiles graph lowering (``--phase build``) and the full study matrix
(``--phase study``).  This shim forwards its historical flags so
existing invocations keep working.

Run the real tool:  python tools/profile.py --phase sim [--n 2048]
"""

import importlib.util
import os
import sys


def main() -> None:
    here = os.path.dirname(os.path.abspath(__file__))
    spec = importlib.util.spec_from_file_location(
        "_repro_tools_profile", os.path.join(here, "profile.py")
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)

    print(
        "note: tools/profile_scheduler.py is deprecated; use "
        "tools/profile.py --phase {build,sim,study}\n",
        file=sys.stderr,
    )
    sys.argv = [sys.argv[0], "--phase", "sim", "--graph", "object"] + sys.argv[1:]
    mod.main()


if __name__ == "__main__":
    main()
