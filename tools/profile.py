#!/usr/bin/env python
"""Profile the simulator's hot paths, one phase at a time.

The optimization-guide workflow: no optimization without measuring.
Three phases cover the pipeline end to end:

``--phase build``
    Graph lowering only — the templated columnar ``build_arena`` path
    next to the recursive object path (each profiled separately on
    fresh algorithm instances, so subtree-template memos start cold).
``--phase sim``
    The event kernel on a pre-built graph (lowering excluded).  Honors
    ``--engine`` and ``--graph {arena,object}`` to profile either
    kernel on either graph shape.
``--phase study``
    The full execution matrix through :class:`EnergyPerformanceStudy`
    (lowering + simulation + measurement), the closest thing to a
    production workload.

Run:
  python tools/profile.py --phase sim [--n 2048] [--threads 4] [--top 15]
  python tools/profile.py --phase build --alg caps --n 4096
  python tools/profile.py --phase study --sizes 512 1024
"""

from __future__ import annotations

import os
import sys

# This file is named ``profile.py``; when run as a script its directory
# leads sys.path and would shadow the stdlib ``profile`` module that
# ``cProfile`` imports.  Drop it before touching the profiler machinery.
_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path[:] = [p for p in sys.path if os.path.abspath(p or os.getcwd()) != _HERE]
sys.modules.pop("profile", None)

import argparse
import cProfile
import io
import pstats

from repro.algorithms.registry import make_algorithm
from repro.cliargs import add_engine_arg, add_machine_args, machine_from_args
from repro.sim import Engine


def _print_stats(profiler: cProfile.Profile, top: int, sort: str) -> None:
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(sort).print_stats(top)
    print(stream.getvalue())


def _profiled(fn, top: int, sort: str):
    profiler = cProfile.Profile()
    profiler.enable()
    out = fn()
    profiler.disable()
    _print_stats(profiler, top, sort)
    return out


def phase_build(args) -> None:
    machine = machine_from_args(args)

    print(f"== object recursion: {args.alg} n={args.n} p={args.threads} ==")
    alg = make_algorithm(args.alg, machine)
    build = _profiled(
        lambda: alg.build(args.n, args.threads, execute=False),
        args.top,
        args.sort,
    )
    print(f"   {len(build.graph)} tasks\n")

    print(f"== templated arena: {args.alg} n={args.n} p={args.threads} ==")
    fresh = make_algorithm(args.alg, machine)  # cold template memo
    arena_build = _profiled(
        lambda: fresh.build_arena(args.n, args.threads), args.top, args.sort
    )
    if arena_build is None:
        print("   (no columnar lowering for this algorithm)")
    else:
        arena = arena_build.graph
        print(f"   {len(arena)} tasks, {arena.nbytes / 2**20:.2f} MiB resident")


def phase_sim(args) -> None:
    machine = machine_from_args(args)
    alg = make_algorithm(args.alg, machine)
    if args.graph == "arena":
        build = alg.build_arena(args.n, args.threads)
        if build is None:
            sys.exit(f"{args.alg} has no build_arena lowering")
    else:
        build = alg.build(args.n, args.threads, execute=False)
    if args.engine == "compiled":
        # JIT-compile outside the profiler so cc's wall time does not
        # drown the sweep we are actually measuring.
        from repro.runtime.compiledpath import warm_compile

        if not warm_compile():
            sys.exit("compiled engine unavailable (see `repro engines`)")
    engine = Engine(machine, engine=args.engine)
    print(
        f"== {args.engine} kernel on {args.graph} graph: {args.alg} "
        f"n={args.n} p={args.threads}, {len(build.graph)} tasks =="
    )
    measurement = _profiled(
        lambda: engine.run(build.graph, args.threads, execute=False),
        args.top,
        args.sort,
    )
    print(measurement.summary())


def phase_study(args) -> None:
    from repro.core.study import EnergyPerformanceStudy, StudyConfig

    machine = machine_from_args(args)
    cfg = StudyConfig(sizes=tuple(args.sizes), execute_max_n=0)
    study = EnergyPerformanceStudy(machine, config=cfg)
    print(f"== study matrix: sizes={args.sizes} (cost-only) ==")
    result = _profiled(lambda: study.run(), args.top, args.sort)
    print(f"   {len(result.runs)} cells")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_machine_args(ap)
    ap.add_argument("--phase", choices=("build", "sim", "study"), default="sim")
    ap.add_argument("--alg", default="strassen",
                    help="algorithm name (build/sim phases)")
    ap.add_argument("--n", type=int, default=2048)
    ap.add_argument("--threads", type=int, default=4)
    add_engine_arg(ap, default="fast")
    ap.add_argument("--graph", choices=("arena", "object"), default="arena",
                    help="graph representation to simulate (sim phase)")
    ap.add_argument("--sizes", type=int, nargs="+", default=[512, 1024, 2048],
                    help="study-phase problem sizes")
    ap.add_argument("--top", type=int, default=15)
    ap.add_argument("--sort", default="cumulative",
                    help="pstats sort key (cumulative, tottime, ...)")
    args = ap.parse_args()

    {"build": phase_build, "sim": phase_sim, "study": phase_study}[args.phase](args)


if __name__ == "__main__":
    main()
