"""Offline calibration search producing the shipped default constants.

Run: python tools/calibrate_defaults.py [--rounds N]
"""
import argparse, time
from repro.machine import haswell_e3_1225
from repro.machine.energy import EnergyModel
from repro import EnergyPerformanceStudy, StudyConfig
from repro.algorithms import BlockedGemm, StrassenWinograd, CapsStrassen
from repro.sim.calibration import PAPER_TARGETS, calibrate, score_study


def build_study(params):
    em = EnergyModel(
        package_static_w=params["static"],
        core_active_w=params["core"],
        j_per_flop=params["jflop"] * 1e-12,
        j_per_byte_l1=6e-12, j_per_byte_l2=12e-12, j_per_byte_l3=30e-12,
        uncore_j_per_dram_byte=params["uncore"] * 1e-9,
        dram_static_w=1.0, dram_j_per_byte=0.4e-9,
    )
    m = haswell_e3_1225(energy=em)
    algs = [
        BlockedGemm(m, min_tiles_per_thread=4),
        StrassenWinograd(m, leaf_efficiency=params["leaf_eff"],
                         add_locality=params["s_add_loc"],
                         leaf_locality=params["s_leaf_loc"]),
        CapsStrassen(m, leaf_efficiency=params["leaf_eff"],
                     add_locality=params["c_add_loc"],
                     leaf_locality=params["c_leaf_loc"]),
    ]
    cfg = StudyConfig(sizes=(512, 1024, 2048), execute_max_n=0, verify=False)
    return EnergyPerformanceStudy(m, algs, cfg)


def objective(params):
    res = build_study(params).run()
    return score_study(res, PAPER_TARGETS)


if __name__ == "__main__":
    ap = argparse.ArgumentParser()
    ap.add_argument("--rounds", type=int, default=3)
    args = ap.parse_args()
    initial = dict(static=12.0, core=2.0, jflop=150.0, uncore=0.8,
                   leaf_eff=0.25, s_add_loc=0.85, s_leaf_loc=0.35,
                   c_add_loc=0.92, c_leaf_loc=0.45)
    steps = dict(static=1.5, core=0.5, jflop=20.0, uncore=0.2,
                 leaf_eff=0.03, s_add_loc=0.05, s_leaf_loc=0.08,
                 c_add_loc=0.03, c_leaf_loc=0.08)
    bounds = dict(static=(8, 16), core=(0.5, 4), jflop=(80, 250), uncore=(0.2, 2.0),
                  leaf_eff=(0.12, 0.5), s_add_loc=(0.5, 0.98), s_leaf_loc=(0.05, 0.9),
                  c_add_loc=(0.5, 0.99), c_leaf_loc=(0.05, 0.95))
    t0 = time.time()
    result = calibrate(objective, initial, steps, bounds, rounds=args.rounds)
    print("loss=%.4f evals=%d wall=%.0fs" % (result.loss, result.evaluations, time.time() - t0))
    for k, v in sorted(result.params.items()):
        print(f"  {k} = {v:.4g}")
