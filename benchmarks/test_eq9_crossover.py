"""Eq. 9 analysis (§IV-D): the Strassen/blocked crossover point.

The paper evaluates n = 480*y/z for its platform and concludes the
crossover is unreachable within 4 GB — reproduced here, along with a
sweep showing which platform changes pull the crossover into range.
"""

from conftest import write_result

from repro.core.crossover import analyze_crossover, crossover_dimension
from repro.machine import generic_smp, haswell_e3_1225
from repro.util.tables import TextTable
from repro.util.units import GiB


def test_eq9_paper_platform(benchmark, machine, results_dir):
    analysis = benchmark(analyze_crossover, machine)
    table = TextTable(["quantity", "value"], ndigits=5)
    table.add_row("y (Mflop/s)", analysis.y_mflops)
    table.add_row("z (MB/s)", analysis.z_mbs)
    table.add_row("crossover n", analysis.crossover_n)
    table.add_row("max feasible n", analysis.max_feasible_n)
    table.add_row("reachable", str(analysis.reachable))
    write_result(results_dir, "eq9_crossover", table.to_ascii())

    # §VI-B: "unable to execute problems large enough to realize the
    # crossover point".
    assert not analysis.reachable
    assert analysis.crossover_n == crossover_dimension(analysis.y_mflops, analysis.z_mbs)


def test_eq9_platform_sweep(benchmark, results_dir):
    def sweep():
        rows = []
        for channels in (1, 2, 4, 8):
            m = generic_smp(
                cores=4,
                frequency_hz=3.2e9,
                dram_channels=channels,
                dram_capacity_bytes=512 * GiB,
            )
            a = analyze_crossover(m)
            rows.append((channels, a.crossover_n, a.reachable))
        return rows

    rows = benchmark(sweep)
    table = TextTable(["channels", "crossover n", "reachable"])
    table.extend(rows)
    write_result(results_dir, "eq9_platform_sweep", table.to_ascii())

    # More bandwidth (larger z) pulls the crossover down linearly.
    ns = [n for _, n, _ in rows]
    assert ns == sorted(ns, reverse=True)
    assert rows[0][1] == rows[1][1] * 2  # halving z doubles n
    assert rows[-1][2]  # 8 channels: reachable
