"""Fig. 4: OpenBLAS power scaling (watts vs threads per size).

Paper: highest power of all fixtures (17.7-56.4 W envelope); only the
LLC-resident 512 case scales near-linearly.
"""

from conftest import write_result

from repro.core.report import fig456_power_series
from repro.reporting.figures import fig4_figure


def test_fig4_openblas_power(benchmark, paper_study, results_dir):
    series = benchmark(fig456_power_series, paper_study, "openblas")
    write_result(results_dir, "fig4_openblas_power", fig4_figure(paper_study).render())

    threads = sorted(paper_study.config.threads)
    for pts in series.values():
        watts = dict(pts)
        ordered = [watts[p] for p in threads]
        assert ordered == sorted(ordered)  # monotone in threads
        # Steep growth: the top thread count draws at least 2x the
        # single-thread package power (paper: 20.2 -> 49.1 W).
        assert ordered[-1] > 2.0 * ordered[0]
