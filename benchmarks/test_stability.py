"""Numerical-stability study (paper §IV-B).

"Strassen has also been known to produce differences in the numerical
stability... these issues have been well understood [19]" — measure the
actual forward error of classical/Strassen/Winograd multiplication
against the Higham-style bounds and confirm both the ordering and that
every measured error sits under its bound.
"""

import numpy as np
import pytest
from conftest import write_result

from repro.linalg.dense import random_matrix
from repro.linalg.fastmm import classic_strassen_product, winograd_product
from repro.linalg.stability import error_bound, max_norm
from repro.util.tables import TextTable

SIZES = (128, 256, 512)
CUTOFF = 32


def _study():
    rows = []
    for n in SIZES:
        a = random_matrix(n, seed=n)
        b = random_matrix(n, seed=n + 1)
        reference = a @ b
        for label, fn, variant in (
            ("classical", lambda a, b: a @ b, "classical"),
            ("strassen", lambda a, b: classic_strassen_product(a, b, CUTOFF), "strassen"),
            ("winograd", lambda a, b: winograd_product(a, b, CUTOFF), "winograd"),
        ):
            err = max_norm(fn(a, b) - reference)
            bound = error_bound(a, b, variant=variant, cutoff=CUTOFF)
            rows.append((n, label, err, bound))
    return rows


def test_stability_study(benchmark, results_dir):
    rows = benchmark.pedantic(_study, rounds=1, iterations=1)
    table = TextTable(["n", "variant", "measured err", "bound"], ndigits=3)
    table.extend(rows)
    write_result(results_dir, "stability_study", table.to_ascii())

    by_key = {(n, label): (err, bound) for n, label, err, bound in rows}
    for n in SIZES:
        # Every measured error within its theoretical bound.
        for label in ("strassen", "winograd"):
            err, bound = by_key[(n, label)]
            assert err <= bound
        # The fast variants lose accuracy relative to classical, and
        # Winograd's longer addition chains lose the most (measured
        # against the classical error, allowing noise at small n).
        classical_err = by_key[(n, "classical")][0]
        assert by_key[(n, "winograd")][0] >= classical_err
    # Error growth with n is superlinear for the fast variants.
    assert by_key[(512, "winograd")][0] > 2 * by_key[(128, "winograd")][0]
