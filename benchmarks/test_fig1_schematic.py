"""Fig. 1: the ideal vs. superlinear EP-scaling schematic."""

from conftest import write_result

from repro.reporting.figures import fig1_schematic


def test_fig1_schematic(benchmark, results_dir):
    fig = benchmark(fig1_schematic, 8)
    write_result(results_dir, "fig1_schematic", fig.render())

    linear = dict(fig.series_values("linear threshold"))
    ideal = dict(fig.series_values("ideal"))
    superlinear = dict(fig.series_values("superlinear"))
    for p in range(2, 9):
        assert ideal[p] < linear[p] < superlinear[p]
    # All three curves meet at the single-unit baseline.
    assert ideal[1] == linear[1] == superlinear[1] == 1.0
