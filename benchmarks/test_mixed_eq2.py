"""Eq. 2 on the mixed sequential-parallel workload (block LU)."""

from conftest import write_result

from repro.algorithms import BlockLU, mixed_ep
from repro.util.tables import TextTable


def test_eq2_mixed_workload(benchmark, machine, results_dir):
    lu = BlockLU(machine, block=128)

    def sweep():
        return {p: mixed_ep(lu, 1024, p) for p in (1, 2, 3, 4)}

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = TextTable(
        ["threads", "T_s (s)", "max T_p (s)", "serial %", "EP_t"], ndigits=4
    )
    for p, report in sorted(reports.items()):
        table.add_row(
            p,
            report.sequential.elapsed_s,
            report.parallel.elapsed_s,
            100 * report.sequential_fraction,
            report.ep_t,
        )
    write_result(results_dir, "eq2_mixed_lu", table.to_ascii())

    # Amdahl structure: the serial fraction grows with threads; the
    # sequential portion's absolute time is thread-independent.
    fracs = [reports[p].sequential_fraction for p in (1, 2, 3, 4)]
    assert fracs == sorted(fracs)
    t_seq = [reports[p].sequential.elapsed_s for p in (1, 2, 3, 4)]
    assert max(t_seq) / min(t_seq) < 1.02
    # EP_t grows with threads but sub-linearly (the serial anchor).
    s4 = reports[4].ep_t / reports[1].ep_t
    assert 1.0 < s4 < 4 * reports[4].parallel.avg_power_w() / reports[1].parallel.avg_power_w()


def test_eq2_protocol_statistics(benchmark, machine, results_dir):
    """Repetition statistics under the paper's quiesce protocol: the
    measurement-noise layer gives realistic run-to-run spread."""
    from repro.algorithms import paper_algorithms
    from repro.core.protocol import ExperimentProtocol

    proto = ExperimentProtocol(machine, repetitions=5, quiesce_s=60.0, seed=7)
    result = benchmark.pedantic(
        lambda: proto.run(paper_algorithms(machine), sizes=(256,), threads=(1, 4)),
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "protocol_statistics", result.summary_table().to_ascii())

    for key, tstats in result.time_stats.items():
        assert tstats.n == 5
        assert 0 < tstats.relative_spread < 0.05  # real but small spread
        assert tstats.minimum <= tstats.mean <= tstats.maximum
