"""Table IV: average energy performance (Eq. 1, power convention).

Paper ordering: OpenBLAS >> CAPS > Strassen at every size, with EP
falling steeply as n grows (EP = avg watts / runtime).
"""

from conftest import write_result

from repro.core.report import table4_ep


def test_table4_ep(benchmark, paper_study, results_dir):
    table = benchmark(table4_ep, paper_study)
    write_result(results_dir, "table4_ep", table.to_ascii())

    sizes = paper_study.config.sizes
    ob = paper_study.avg_ep_by_size("openblas")
    st = paper_study.avg_ep_by_size("strassen")
    ca = paper_study.avg_ep_by_size("caps")

    for n in sizes:
        assert ob[n] > 2 * max(st[n], ca[n])  # OpenBLAS far above
        assert ca[n] > st[n] * 0.9  # CAPS at or slightly above Strassen
    # EP falls steeply with problem size (runtime grows ~n^3).
    for table_by_size in (ob, st, ca):
        values = [table_by_size[n] for n in sorted(sizes)]
        assert values == sorted(values, reverse=True)
        assert values[0] > 5 * values[-1]
