"""Fig. 5: Strassen power scaling.

Paper: "sub linear across all problem sizes and all parallel thread
counts" — the watts-vs-threads curve flattens as threads grow.
"""

from conftest import write_result

from repro.core.report import fig456_power_series
from repro.reporting.figures import fig5_figure


def test_fig5_strassen_power(benchmark, paper_study, results_dir):
    series = benchmark(fig456_power_series, paper_study, "strassen")
    write_result(results_dir, "fig5_strassen_power", fig5_figure(paper_study).render())

    threads = sorted(paper_study.config.threads)
    for pts in series.values():
        watts = dict(pts)
        # Sub-linear power scaling: each added thread buys less power
        # than the first one did (concave curve).
        first_step = watts[threads[1]] - watts[threads[0]]
        last_step = watts[threads[-1]] - watts[threads[-2]]
        assert last_step < first_step
        # And far below proportional growth.
        assert watts[threads[-1]] < watts[threads[0]] * threads[-1] / threads[0]
