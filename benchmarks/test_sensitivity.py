"""Platform-sensitivity bench: do the paper's conclusions survive a
wider memory system?  (§VIII's 'larger platforms' question.)"""

from conftest import write_result

from repro.core.sensitivity import channel_sweep, sensitivity_table


def test_channel_sensitivity(benchmark, machine, results_dir):
    points = benchmark.pedantic(
        lambda: channel_sweep(
            machine, channels=(1, 2, 4), sizes=(512, 1024), threads=(1, 2, 4)
        ),
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "sensitivity_channels", sensitivity_table(points).to_ascii())

    base, two, four = points
    # The paper's platform (row 1): crossover unreachable, Strassen
    # family starved to deep sub-linearity.
    assert not base.crossover_reachable
    assert base.strassen_s4 < 0.75 * 4
    # Wider memory: Strassen scaling recovers and the crossover falls
    # into range -- the conclusions are bandwidth-bound artifacts.
    assert two.crossover_reachable and four.crossover_reachable
    assert four.strassen_s4 > base.strassen_s4 * 1.5
    assert four.strassen_slowdown < base.strassen_slowdown
    # OpenBLAS's superlinear EP scaling is robust to all of it.
    for p in points:
        assert p.openblas_s4 > 1.5 * 4
