"""§VIII extension: EP of sparse storage schemes (CSR/COO/ELL/BSR)
across structured and adversarial patterns."""

import pytest
from conftest import write_result

from repro.machine import haswell_e3_1225
from repro.sparse import SparseEPStudy, banded, power_law
from repro.util.tables import TextTable


@pytest.fixture(scope="module")
def machine_():
    return haswell_e3_1225()


def test_ext_sparse_banded(benchmark, machine_, results_dir):
    pattern = banded(1024, 8, seed=11)
    result = benchmark.pedantic(
        lambda: SparseEPStudy(machine_, pattern, repeats=4, verify=False).run(),
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "ext_sparse_banded", result.summary_table().to_ascii())

    j = {fmt: result.energy_per_sweep_j(fmt, 4) for fmt in result.formats}
    # Banded structure: DIA (no per-entry indices) most energy-efficient,
    # blocked BSR second; COO's double index array the worst of the
    # index-carrying schemes.
    assert j["dia"] <= min(j.values()) * 1.001
    assert j["bsr"] <= min(j["csr"], j["coo"], j["ell"]) * 1.05
    assert j["coo"] >= max(j["csr"], j["bsr"])
    assert result.storage_bytes["dia"] < result.storage_bytes["csr"]
    # Every scheme scales sub-linearly (bandwidth-bound kernel).
    for fmt in result.formats:
        pts = result.scaling_curve(fmt)
        assert pts[-1].s < pts[-1].parallelism


def test_ext_sparse_power_law(benchmark, machine_, results_dir):
    pattern = power_law(1024, avg_degree=8, alpha=1.7, seed=12)
    result = benchmark.pedantic(
        lambda: SparseEPStudy(machine_, pattern, repeats=4, verify=False).run(),
        rounds=1,
        iterations=1,
    )
    write_result(
        results_dir, "ext_sparse_power_law", result.summary_table().to_ascii()
    )

    # Skewed row degrees: ELL pays for its padding in storage, energy
    # and time versus CSR; DIA (dense diagonals on a scattered pattern)
    # is catastrophically worse still — the storage-choice story in one
    # table.
    assert result.storage_bytes["ell"] > 2 * result.storage_bytes["csr"]
    assert result.energy_per_sweep_j("ell", 4) > result.energy_per_sweep_j("csr", 4)
    assert result.time_s("ell", 4) > result.time_s("csr", 4)
    assert result.storage_bytes["dia"] > 20 * result.storage_bytes["csr"]
    assert result.energy_per_sweep_j("dia", 4) > 10 * result.energy_per_sweep_j("csr", 4)


def test_ext_spgemm(benchmark, machine_, results_dir):
    """SpGEMM (Gustavson): squaring a band vs a random pattern — the
    intermediate-product count, not nnz(A), governs cost."""
    from repro.sparse import CSRMatrix, banded, uniform_random
    from repro.sparse.spgemm import build_spgemm_graph, intermediate_products
    from repro.sim import Engine

    engine = Engine(machine_)

    def run():
        rows = []
        for label, pattern in (
            ("band^2", banded(512, 4, seed=31)),
            ("random^2", uniform_random(512, 0.01, seed=32)),
        ):
            a = CSRMatrix.from_coo(pattern)
            build = build_spgemm_graph(a, a, machine_, threads=4, execute=True)
            meas = engine.run(build.graph, threads=4)
            build.verify()
            inter = intermediate_products(a, a, 0, a.shape[0])
            rows.append(
                (label, a.nnz, inter, build.result.nnz,
                 inter / max(build.result.nnz, 1), meas.elapsed_s,
                 meas.total_energy_j)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(
        ["pattern", "nnz(A)", "intermediates", "nnz(C)", "compression",
         "time (s)", "J"],
        ndigits=4,
    )
    table.extend(rows)
    write_result(results_dir, "ext_spgemm", table.to_ascii())

    band, rand = rows
    # Structured overlap: a band's intermediate products pile onto the
    # same few output diagonals (high compression, nnz(C) ~ 2x band),
    # while random intermediates rarely collide (compression ~1, the
    # output fills in).  Gustavson's cost follows the intermediates,
    # not nnz(A).
    assert band[4] > 3.0  # heavy duplicate accumulation
    assert rand[4] < 2.0  # almost no collisions
    assert rand[3] > 3 * rand[1]  # random product fills in
    assert band[3] < 3 * band[1]  # band output stays banded
