"""Simulator performance: how fast the substrate itself runs.

These are true pytest-benchmark microbenchmarks (many rounds) of the
three hot paths: the discrete-event scheduler, task-graph lowering and
the trace-driven cache simulator.
"""

import pytest

from repro.algorithms import StrassenWinograd
from repro.machine.cache import CacheHierarchySim, CacheHierarchySpec
from repro.runtime.cost import TaskCost
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskGraph


def _wide_graph(tasks=2000):
    g = TaskGraph("wide")
    for i in range(tasks):
        g.add(f"t{i}", TaskCost(flops=1e8, bytes_dram=1e5))
    return g


def test_scheduler_throughput(benchmark, machine):
    """Tasks scheduled per call over a 2000-task graph."""
    g = _wide_graph()
    scheduler = Scheduler(machine, threads=4, execute=False)
    result = benchmark(scheduler.run, g)
    assert len(result.records) == 2000


def test_strassen_lowering_throughput(benchmark, machine):
    """Task-graph construction for a 512^2 problem (cost-only)."""
    alg = StrassenWinograd(machine)
    build = benchmark(alg.build, 512, 4, 0, False)
    assert len(build.graph) > 50


def test_cache_sim_throughput(benchmark):
    """Accesses per second through the 3-level LRU hierarchy."""
    spec = CacheHierarchySpec.haswell_like()

    def stream():
        sim = CacheHierarchySim(spec)
        sim.access_range(0, 64 * 1024, stride=64)
        return sim

    sim = benchmark(stream)
    assert sim.memory_bytes == 64 * 1024
