"""Fig. 7: energy-performance scaling vs the linear threshold.

Paper: OpenBLAS falls "well beyond the linear scale" (superlinear);
Strassen and CAPS have "ideal or nearly ideal scaling curves", with
CAPS "slightly closer to the linear scale" than Strassen.
"""

from conftest import write_result

from repro.core.report import fig7_scaling_series
from repro.core.scaling import ScalingClass
from repro.reporting.figures import fig7_figure


def test_fig7_ep_scaling(benchmark, paper_study, results_dir):
    series = benchmark(fig7_scaling_series, paper_study)
    write_result(results_dir, "fig7_ep_scaling", fig7_figure(paper_study).render())

    pmax = max(paper_study.config.threads)
    for n in paper_study.config.sizes:
        curves = {
            alg: paper_study.scaling_curve(alg, n)
            for alg in paper_study.algorithm_names
        }
        # Every curve starts at the Eq. 5 baseline S = 1.
        for pts in curves.values():
            assert pts[0].s == 1.0
        ob, st, ca = curves["openblas"][-1], curves["strassen"][-1], curves["caps"][-1]
        assert ob.scaling_class is ScalingClass.SUPERLINEAR
        assert ob.s > 1.5 * pmax
        assert st.s <= pmax * 1.05  # at or below the line
        assert abs(ca.distance_to_linear) <= abs(st.distance_to_linear)
