"""Shared fixtures for the benchmark harness.

Every table/figure benchmark consumes one shared study run of the
paper's execution matrix.  By default the matrix is reduced (sizes
256-1024, cost-only numerics) so the whole harness completes in well
under a minute; set ``REPRO_FULL=1`` to run the paper's exact matrix
{512, 1024, 2048, 4096} x {1, 2, 3, 4} (a few minutes).

Each benchmark writes the table/series it regenerates to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference the
actual reproduced numbers.
"""

import os
from pathlib import Path

import pytest

from repro import EnergyPerformanceStudy, StudyConfig, haswell_e3_1225
from repro.core.study import PAPER_SIZES, PAPER_THREADS

RESULTS_DIR = Path(__file__).parent / "results"


def full_matrix() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def machine():
    return haswell_e3_1225()


@pytest.fixture(scope="session")
def paper_study(machine):
    """One shared study over the (possibly reduced) execution matrix."""
    if full_matrix():
        cfg = StudyConfig(sizes=PAPER_SIZES, threads=PAPER_THREADS, execute_max_n=1024)
    else:
        cfg = StudyConfig(
            sizes=(256, 512, 1024),
            threads=PAPER_THREADS,
            execute_max_n=256,
        )
    return EnergyPerformanceStudy(machine, config=cfg).run()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, content: str) -> None:
    """Record one experiment's reproduced output."""
    (results_dir / f"{name}.txt").write_text(content + "\n")
