"""Table III: average package watts by thread count.

Paper values: OpenBLAS 20.2/30.9/40.98/49.13 W, Strassen
21.1/26.25/30.4/31.9 W, CAPS 17.7/25.75/30.175/33.175 W.
"""

from conftest import write_result

from repro.core.report import table3_power


def test_table3_power(benchmark, paper_study, results_dir):
    table = benchmark(table3_power, paper_study)
    write_result(results_dir, "table3_power", table.to_ascii())

    ob = paper_study.avg_power_by_threads("openblas")
    st = paper_study.avg_power_by_threads("strassen")
    ca = paper_study.avg_power_by_threads("caps")
    pmax = max(paper_study.config.threads)

    # OpenBLAS draws the most at every thread count >= 2 and grows the
    # steepest; the Strassen family stays flat by comparison.
    for p in paper_study.config.threads:
        if p >= 2:
            assert ob[p] > st[p] and ob[p] > ca[p]
    assert (ob[pmax] - ob[1]) > 2 * (st[pmax] - st[1])
    # CAPS 1-thread row is the lowest (paper: 17.7 W).
    assert ca[1] <= st[1] and ca[1] <= ob[1] * 1.05
    # Absolute envelope sanity: the calibrated model lands in the
    # paper's 17-57 W range.
    for watts in (ob, st, ca):
        assert all(15.0 < w < 60.0 for w in watts.values())
