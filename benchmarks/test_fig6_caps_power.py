"""Fig. 6: CAPS power scaling.

Paper: sub-linear everywhere; slightly below Strassen at 1-2 threads,
slightly above at 3-4.
"""

from conftest import write_result

from repro.core.report import fig456_power_series
from repro.reporting.figures import fig6_figure


def test_fig6_caps_power(benchmark, paper_study, results_dir):
    series = benchmark(fig456_power_series, paper_study, "caps")
    write_result(results_dir, "fig6_caps_power", fig6_figure(paper_study).render())

    threads = sorted(paper_study.config.threads)
    for pts in series.values():
        watts = dict(pts)
        assert watts[threads[-1]] < watts[threads[0]] * threads[-1] / threads[0]

    # Cross-fixture relation (paper §VI-C): CAPS below Strassen at one
    # thread, at/above at the top thread count.
    caps = paper_study.avg_power_by_threads("caps")
    strassen = paper_study.avg_power_by_threads("strassen")
    assert caps[1] <= strassen[1]
    assert caps[threads[-1]] >= strassen[threads[-1]] - 0.5
