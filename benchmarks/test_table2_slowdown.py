"""Table II + Fig. 3: average Strassen/CAPS slowdown vs OpenBLAS.

Paper values (full matrix): Strassen 2.965x, CAPS 2.788x on average,
with CAPS ~5.97% faster than classic Strassen.
"""

from conftest import write_result

from repro.core.report import fig3_slowdown_series, table2_slowdown
from repro.reporting.figures import fig3_figure


def test_table2_slowdown(benchmark, paper_study, results_dir):
    table = benchmark(table2_slowdown, paper_study)
    text = table.to_ascii()
    write_result(results_dir, "table2_slowdown", text)

    # Shape assertions (paper §VI-B).
    strassen = paper_study.avg_slowdown("strassen")
    caps = paper_study.avg_slowdown("caps")
    assert 2.0 < strassen < 4.5
    assert 2.0 < caps < 4.0
    assert caps < strassen  # CAPS wins on average


def test_fig3_slowdown_series(benchmark, paper_study, results_dir):
    series = benchmark(fig3_slowdown_series, paper_study)
    fig = fig3_figure(paper_study)
    write_result(results_dir, "fig3_slowdown", fig.render())

    # Every point shows the Strassen family slower than the baseline.
    for pts in series.values():
        assert all(y > 1.0 for _, y in pts)
