"""Power-capped algorithmic choice — the paper's motivation (§I, §VI-D)
exercised end-to-end over the shared study."""

from conftest import write_result

from repro.core.choice import choice_table, pareto_frontier, select_under_power_cap


def test_choice_under_power_caps(benchmark, paper_study, results_dir):
    n = max(paper_study.config.sizes)
    table = benchmark(choice_table, paper_study, n)
    write_result(results_dir, "choice_table", table.to_ascii())

    frontier = pareto_frontier(paper_study, n)
    # The fastest point is OpenBLAS at full threads; the lowest-power
    # point runs a single thread (fewest active cores — which algorithm
    # owns it flips with problem size, exactly as in the paper's own
    # Table III where OpenBLAS and CAPS trade the coolest 1-thread row).
    assert frontier[0].algorithm == "openblas"
    assert frontier[0].threads == max(paper_study.config.threads)
    coolest = min(frontier, key=lambda c: c.avg_power_w)
    assert coolest.threads == 1
    # The frontier spans a real trade: its fastest and coolest points
    # differ by at least 2x in runtime.
    assert coolest.time_s > 2 * frontier[0].time_s

    # Walk the cap down: the selection must shift away from OpenBLAS x
    # max-threads before becoming infeasible, and runtimes must be
    # monotone non-decreasing as the cap tightens.
    caps = (200.0, 45.0, 35.0, 25.0)
    picks = [select_under_power_cap(paper_study, n, cap, "peak") for cap in caps]
    assert picks[0] is not None and picks[0].algorithm == "openblas"
    times = [p.time_s for p in picks if p is not None]
    assert times == sorted(times)
    tight = [p for p in picks if p is not None][-1]
    assert (tight.algorithm, tight.threads) != (picks[0].algorithm, picks[0].threads)
