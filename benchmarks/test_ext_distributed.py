"""§VIII extension: distributed-memory EP study with an interconnect
power plane (the paper's stated next step)."""

from conftest import write_result

from repro.distributed import (
    CapsDistributed,
    ClusterSpec,
    DistributedEPStudy,
    Summa25D,
    Summa2D,
)
from repro.power.planes import Plane
from repro.util.tables import TextTable

N = 8192
NODES = (1, 4, 16, 64, 256)


def _run():
    cluster = ClusterSpec()
    study = DistributedEPStudy(
        cluster,
        [Summa2D(cluster), Summa25D(cluster, c=4), CapsDistributed(cluster)],
        node_counts=NODES,
    )
    return study.run(N)


def test_ext_distributed(benchmark, results_dir):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(
        ["algorithm", "nodes", "time (s)", "comm %", "rank W", "net W", "S"],
        ndigits=4,
    )
    for alg in result.algorithm_names:
        scaling = {p.parallelism: p.s for p in result.scaling_curve(alg)}
        for nodes in NODES:
            run = result.run_for(alg, nodes)
            table.add_row(
                result.display_names[alg],
                nodes,
                run.time_s,
                100 * run.profile.comm_fraction,
                run.rank_power_w,
                run.planes_w[Plane.PSYS],
                scaling[nodes],
            )
    write_result(results_dir, "ext_distributed", table.to_ascii())

    # CAPS (Strassen flops + Eq. 8 communication) wins at every scale.
    for nodes in NODES:
        caps = result.run_for("caps-dist", nodes)
        assert caps.time_s < result.run_for("summa", nodes).time_s
        assert caps.time_s < result.run_for("summa25d", nodes).time_s
    # 2.5D beats 2D on communication wherever replication is usable.
    for nodes in (4, 16, 64, 256):
        assert (
            result.run_for("summa25d", nodes).profile.comm.link_bytes
            < result.run_for("summa", nodes).profile.comm.link_bytes
        )
    # Communication share grows with scale for every algorithm.
    for alg in result.algorithm_names:
        fracs = [f for _, f in result.comm_fraction_curve(alg)]
        assert fracs == sorted(fracs)


def test_ext_bsp_imbalance(benchmark, results_dir):
    """BSP superstep simulation: stragglers vs the EP ratio (the
    quantitative face of Eq. 2's max-over-units)."""
    from repro.distributed import BspSimulator, caps_program, summa_program

    cluster = ClusterSpec()
    sim = BspSimulator(cluster)

    def sweep():
        rows = []
        for imb in (0.0, 0.1, 0.3):
            rs = sim.run(summa_program(cluster, N, 16, imbalance=imb))
            rc = sim.run(caps_program(cluster, N, 16, imbalance=imb))
            rows.append(("SUMMA", imb, rs.total_time_s, rs.max_idle_fraction, rs.ep()))
            rows.append(("CAPS", imb, rc.total_time_s, rc.max_idle_fraction, rc.ep()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable(["algorithm", "imbalance", "time (s)", "max idle", "EP_t"], ndigits=4)
    table.extend(rows)
    write_result(results_dir, "ext_bsp_imbalance", table.to_ascii())

    by_key = {(alg, imb): (t, idle, ep) for alg, imb, t, idle, ep in rows}
    for alg in ("SUMMA", "CAPS"):
        t0, _, ep0 = by_key[(alg, 0.0)]
        t3, idle3, ep3 = by_key[(alg, 0.3)]
        assert t3 > t0  # stragglers stretch the run
        assert idle3 > 0.2
        assert ep3 < ep0  # and drag the EP ratio
    # CAPS stays faster than SUMMA at every imbalance level.
    for imb in (0.0, 0.1, 0.3):
        assert by_key[("CAPS", imb)][0] < by_key[("SUMMA", imb)][0]
