"""Ablation benches for the design choices DESIGN.md calls out:

* Winograd (15 adds) vs classic Strassen (18 adds);
* CAPS BFS packing on/off (the communication-avoidance trade);
* leaf cutoff sweep (the paper's empirically tuned 64);
* CAPS cutoff depth sweep (the paper's empirically tuned 4);
* DVFS: fixed frequency (paper BIOS setting) vs a throttled P-state.
"""

import pytest
from conftest import write_result

from repro.algorithms import CapsStrassen, StrassenWinograd, tune_parameter
from repro.machine import haswell_e3_1225
from repro.machine.frequency import FrequencyDomain, PState
from repro.sim import Engine
from repro.util.tables import TextTable

N = 512
THREADS = 4


@pytest.fixture(scope="module")
def machine_():
    return haswell_e3_1225()


@pytest.fixture(scope="module")
def engine_(machine_):
    return Engine(machine_)


def _measure(engine, alg, n=N, threads=THREADS):
    build = alg.build(n, threads, execute=False)
    return engine.run(build.graph, threads, execute=False)


def test_winograd_vs_classic_adds(benchmark, machine_, engine_, results_dir):
    """Winograd's 15 additions beat classic Strassen's 18 on both time
    and energy — addition passes are pure communication."""
    winograd = StrassenWinograd(machine_)
    classic = StrassenWinograd(machine_, classic=True)
    mw = benchmark.pedantic(
        lambda: _measure(engine_, winograd), rounds=1, iterations=1
    )
    mc = _measure(engine_, classic)
    table = TextTable(["variant", "adds/level", "time (s)", "pkg J"], ndigits=5)
    table.add_row("Winograd", 15, mw.elapsed_s, mw.energy.package)
    table.add_row("classic", 18, mc.elapsed_s, mc.energy.package)
    write_result(results_dir, "ablation_winograd_vs_classic", table.to_ascii())

    assert mw.elapsed_s < mc.elapsed_s
    assert mw.energy.package < mc.energy.package


def test_caps_packing_tradeoff(benchmark, machine_, engine_, results_dir):
    """Packing costs time but cuts DRAM traffic (and so uncore energy
    per byte of channel traffic) — the Eq. 8 memory-for-communication
    trade in miniature."""
    packed = CapsStrassen(machine_)
    zero_copy = CapsStrassen(machine_, pack=False)
    mp = benchmark.pedantic(lambda: _measure(engine_, packed), rounds=1, iterations=1)
    mz = _measure(engine_, zero_copy)
    table = TextTable(["variant", "time (s)", "DRAM bytes", "pkg J"], ndigits=5)
    table.add_row("packed", mp.elapsed_s, mp.bytes_dram, mp.energy.package)
    table.add_row("zero-copy", mz.elapsed_s, mz.bytes_dram, mz.energy.package)
    write_result(results_dir, "ablation_caps_packing", table.to_ascii())

    assert mp.elapsed_s > mz.elapsed_s  # packing is not free
    assert mp.bytes_dram >= mz.bytes_dram * 0.99


def test_leaf_cutoff_tuning(benchmark, machine_, engine_, results_dir):
    """Reproduce the paper's §IV-B empirical cutoff search: 'the optimal
    point of recursion to revert to the dense solver is when the
    sub-matrix Nth dimension is <= 64'."""

    def objective(cutoff):
        alg = StrassenWinograd(machine_, cutoff=cutoff, grain=cutoff)
        return _measure(engine_, alg).elapsed_s

    best, scores = benchmark.pedantic(
        lambda: tune_parameter([16, 32, 64, 128, 256], objective),
        rounds=1,
        iterations=1,
    )
    table = TextTable(["cutoff", "time (s)"], ndigits=6)
    for cutoff, score in sorted(scores.items()):
        table.add_row(cutoff, score)
    table.add_row("best", float(best))
    write_result(results_dir, "ablation_leaf_cutoff", table.to_ascii())

    # The interior of the sweep wins: tiny leaves drown in addition
    # overhead, huge leaves forfeit the operation-count reduction.
    assert best in (32, 64, 128)


def test_caps_cutoff_depth(benchmark, machine_, engine_, results_dir):
    """Sweep the BFS/DFS switch depth (paper: 4)."""

    def objective(depth):
        alg = CapsStrassen(machine_, cutoff_depth=depth)
        return _measure(engine_, alg, n=1024).elapsed_s

    best, scores = benchmark.pedantic(
        lambda: tune_parameter([0, 1, 2, 4], objective), rounds=1, iterations=1
    )
    table = TextTable(["cutoff depth", "time (s)"], ndigits=6)
    for depth, score in sorted(scores.items()):
        table.add_row(depth, score)
    write_result(results_dir, "ablation_caps_depth", table.to_ascii())

    # Deeper BFS (more task parallelism + locality) never loses on this
    # shared-memory platform; the paper's 4 covers the whole tree here.
    assert scores[4] <= scores[0]


def test_dvfs_energy_time_trade(benchmark, machine_, engine_, results_dir):
    """Fixed nominal frequency (the paper's BIOS choice) vs a throttled
    P-state: throttling cuts power but stretches runtime."""
    from dataclasses import replace

    slow_freq = FrequencyDomain(
        (PState(1.6e9, 0.8), PState(3.2e9, 1.0)), active_index=0, power_saving_enabled=True
    )
    slow_machine = replace(machine_, frequency=slow_freq)
    alg_fast = StrassenWinograd(machine_)
    alg_slow = StrassenWinograd(slow_machine)
    mf = benchmark.pedantic(
        lambda: _measure(engine_, alg_fast), rounds=1, iterations=1
    )
    ms = _measure(Engine(slow_machine), alg_slow)
    table = TextTable(["P-state", "time (s)", "avg W"], ndigits=5)
    table.add_row("3.2 GHz", mf.elapsed_s, mf.avg_power_w())
    table.add_row("1.6 GHz", ms.elapsed_s, ms.avg_power_w())
    write_result(results_dir, "ablation_dvfs", table.to_ascii())

    assert ms.elapsed_s > mf.elapsed_s
    assert ms.avg_power_w() < mf.avg_power_w()
