"""Eq. 8 analysis (§IV-C): the CAPS communication bound.

Sweeps n, P and M, and records the regime map plus the CAPS-vs-classical
bandwidth comparison that motivates the whole paper.
"""

from conftest import write_result

from repro.core.bounds import (
    bound_crossover_memory,
    caps_bandwidth_bound,
    classical_bandwidth_bound,
    communication_bound_words,
)
from repro.util.tables import TextTable


def _sweep():
    table = TextTable(
        ["n", "P", "M (words)", "CAPS words", "classical words", "regime"], ndigits=4
    )
    for n in (4096, 16384):
        for p in (16, 256):
            for m in (2**18, 2**24):
                bound = communication_bound_words(n, p, m)
                table.add_row(
                    n,
                    p,
                    m,
                    bound.words,
                    classical_bandwidth_bound(n, p, m),
                    bound.binding_term,
                )
    return table


def test_eq8_bound_sweep(benchmark, results_dir):
    table = benchmark(_sweep)
    write_result(results_dir, "eq8_bounds", table.to_ascii())

    # CAPS (Strassen exponent) always at or below the classical bound
    # for these configurations.
    for row in table.rows:
        caps, classical = float(row[3]), float(row[4])
        assert caps <= classical * 1.0000001


def test_eq8_memory_trade(benchmark):
    """More local memory lowers communication until the
    memory-independent term binds — CAPS's BFS buffer trade."""
    n, p = 16384, 64
    m_star = benchmark(bound_crossover_memory, n, p)
    below = caps_bandwidth_bound(n, p, m_star / 4)
    at = caps_bandwidth_bound(n, p, m_star)
    above = caps_bandwidth_bound(n, p, m_star * 4)
    assert below > at
    assert above == at  # no further benefit past the crossover
